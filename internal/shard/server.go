package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"recsys/internal/embcache"
	"recsys/internal/nn"
)

// ServerOptions configures one shard server.
type ServerOptions struct {
	// CacheRows is the per-table read-through row cache capacity (rows;
	// 0 disables). On an int8-backed store the cache amortizes
	// dequantization exactly as the in-process serving path does.
	CacheRows int
	// CachePolicy is the eviction policy (embcache.Policies; default
	// "lru").
	CachePolicy string
}

// Server serves embedding rows out of nn.RowStore implementations over
// the wire protocol — the process behind cmd/embshard. Each store is
// one table, addressed by its index; a server in an n-shard tier holds
// full-height tables but is only ever asked for the rows that hash to
// it (clients partition with ShardOf), so per-shard cache capacity
// covers 1/n of the hot set.
type Server struct {
	tables []*serverTable

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests atomic.Int64

	// Fault injection (tests, cmd/embshard flags): every stallEvery-th
	// gather request sleeps stallNS before answering — the transient
	// per-request stall hedging exists to absorb. A constant slowdown
	// would defeat same-shard hedging (no replicas to fail over to), so
	// the injector models the production shape: occasional requests
	// hit a GC pause / queue spike, the rest are healthy.
	stallNS    atomic.Int64
	stallEvery atomic.Int64
	stallSeq   atomic.Int64

	// rowServiceNS emulates per-row fetch service time (one sleep of
	// nIDs × rowServiceNS per table section): the memory-bound row
	// gather cost internal/dist prices per shard. On hosts with too few
	// cores to expose real fan-out parallelism (CI boxes), this knob
	// makes scaling experiments measurable — sleeps overlap across
	// shards the way independent nodes' memory systems would.
	rowServiceNS atomic.Int64
}

type serverTable struct {
	// mu serializes UpdateRow against in-flight reads so a row is never
	// served half-written; reads share the lock.
	mu    sync.RWMutex
	store nn.RowStore
	// gen is the table's generation token, echoed in every response.
	// It starts at 1 (0 means "never seen" on the client side) and
	// advances on every row update, which is how invalidation crosses
	// the RPC boundary: clients compare successive response gens and
	// drop their hot-row caches on change.
	gen   atomic.Uint64
	cache *embcache.Concurrent
}

// NewServer wraps stores (one per table index) into a server.
func NewServer(stores []nn.RowStore, opts ServerOptions) (*Server, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: server needs at least one table store")
	}
	policy := opts.CachePolicy
	if policy == "" {
		policy = "lru"
	}
	s := &Server{conns: make(map[net.Conn]struct{})}
	for i, st := range stores {
		t := &serverTable{store: st}
		t.gen.Store(1)
		if opts.CacheRows > 0 {
			c, err := embcache.NewConcurrent(opts.CacheRows, st.Cols(), policy, 0)
			if err != nil {
				return nil, fmt.Errorf("shard: table %d cache: %w", i, err)
			}
			t.cache = c
		}
		s.tables = append(s.tables, t)
	}
	return s, nil
}

// SetStall configures fault injection: every every-th gather request
// sleeps d before being served (every <= 0 disables).
func (s *Server) SetStall(d time.Duration, every int) {
	s.stallNS.Store(int64(d))
	s.stallEvery.Store(int64(every))
}

// SetRowServiceTime emulates d of service time per requested row
// (0 disables) — see rowServiceNS.
func (s *Server) SetRowServiceTime(d time.Duration) {
	s.rowServiceNS.Store(int64(d))
}

// Requests returns the number of gather requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// Gen returns table's current generation token.
func (s *Server) Gen(table int) uint64 { return s.tables[table].gen.Load() }

// UpdateRow applies a trainer sparse update to one row: the store's
// write (fp32 + int8 re-quantization), a generation bump, and a local
// cache invalidation. The per-table lock excludes in-flight reads for
// the duration of the write.
func (s *Server) UpdateRow(table int, id int64, row []float32) error {
	if table < 0 || table >= len(s.tables) {
		return fmt.Errorf("shard: no table %d", table)
	}
	t := s.tables[table]
	w, ok := t.store.(nn.RowWriter)
	if !ok {
		return fmt.Errorf("shard: table %d store is read-only", table)
	}
	if id < 0 || int(id) >= t.store.Rows() {
		return fmt.Errorf("shard: row %d out of range for table %d", id, table)
	}
	t.mu.Lock()
	w.WriteRow(id, row)
	t.mu.Unlock()
	t.gen.Add(1)
	if t.cache != nil {
		t.cache.Invalidate()
	}
	return nil
}

// BumpGen advances table's generation without a row write — the hook
// for out-of-band table mutations (e.g. a direct W rewrite in tests).
func (s *Server) BumpGen(table int) {
	t := s.tables[table]
	t.gen.Add(1)
	if t.cache != nil {
		t.cache.Invalidate()
	}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("shard: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Addr returns the listener address (valid once Serve is running).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.wg.Done()
}

// maxCols returns the widest table, sizing the per-connection row
// scratch.
func (s *Server) maxCols() int {
	m := 0
	for _, t := range s.tables {
		if c := t.store.Cols(); c > m {
			m = c
		}
	}
	return m
}

func (s *Server) handleConn(c net.Conn) {
	defer s.dropConn(c)
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var in, out []byte
	row := make([]float32, s.maxCols())
	acc := make([]float32, s.maxCols())
	for {
		var err error
		in, err = readFrame(br, in)
		if err != nil {
			return // clean EOF or broken peer either way: drop the conn
		}
		out = s.handle(in, out[:0], row, acc)
		if err := writeFrame(bw, out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func appendErrResp(b []byte, reqID uint32, status byte, msg string) []byte {
	b = append(b, wireVersion, status)
	b = putU32(b, reqID)
	b = putU16(b, uint16(len(msg)))
	return append(b, msg...)
}

// handle serves one decoded request frame, appending the response
// payload to out.
func (s *Server) handle(in, out []byte, row, acc []float32) []byte {
	r := reader{b: in}
	version := r.u8()
	op := r.u8()
	reqID := r.u32()
	r.u32() // deadlineUS: advisory; the client enforces via socket deadlines
	nTables := int(r.u16())
	if r.err != nil || version != wireVersion {
		return appendErrResp(out, reqID, statusBadRequest, "bad request header")
	}
	switch op {
	case opPing:
		out = append(out, wireVersion, statusOK)
		out = putU32(out, reqID)
		return putU16(out, 0)
	case opGatherRows, opGatherPooled:
	default:
		return appendErrResp(out, reqID, statusBadRequest, fmt.Sprintf("unknown opcode %d", op))
	}
	s.requests.Add(1)
	if every := s.stallEvery.Load(); every > 0 && s.stallSeq.Add(1)%every == 0 {
		time.Sleep(time.Duration(s.stallNS.Load()))
	}
	out = append(out, wireVersion, statusOK)
	out = putU32(out, reqID)
	out = putU16(out, uint16(nTables))
	for i := 0; i < nTables; i++ {
		var err error
		out, err = s.serveTable(&r, op, out, row, acc)
		if err != nil {
			return appendErrResp(out[:0], reqID, statusBadRequest, err.Error())
		}
	}
	return out
}

// serveTable decodes one request table section from r and appends its
// response section.
func (s *Server) serveTable(r *reader, op byte, out []byte, row, acc []float32) ([]byte, error) {
	idx := r.u32()
	nIDs := int(r.u32())
	nOut := nIDs
	var offsets []byte
	if op == opGatherPooled {
		nOut = int(r.u32())
		offsets = r.bytes((nOut + 1) * 4)
	}
	ids := r.bytes(nIDs * 4)
	if r.err != nil {
		return out, r.err
	}
	if int(idx) >= len(s.tables) {
		return out, fmt.Errorf("no table %d", idx)
	}
	t := s.tables[int(idx)]
	if rs := s.rowServiceNS.Load(); rs > 0 {
		time.Sleep(time.Duration(rs * int64(nIDs)))
	}
	rows, cols := t.store.Rows(), t.store.Cols()
	for i := 0; i < nIDs; i++ {
		if id := binary.LittleEndian.Uint32(ids[i*4:]); int(id) >= rows {
			return out, fmt.Errorf("row %d out of range for table %d", id, idx)
		}
	}
	t.mu.RLock()
	gen := t.gen.Load()
	var cgen uint64
	if t.cache != nil {
		cgen = t.cache.Gen()
	}
	out = putU32(out, idx)
	out = putU64(out, gen)
	out = putU16(out, uint16(cols))
	out = putU32(out, uint32(nOut))
	readRow := func(i int, dst []float32) {
		id := int64(binary.LittleEndian.Uint32(ids[i*4:]))
		if t.cache != nil && t.cache.Lookup(cgen, uint64(id), dst[:cols]) {
			return
		}
		t.store.ReadRow(id, dst[:cols])
		if t.cache != nil {
			t.cache.Insert(cgen, uint64(id), dst[:cols])
		}
	}
	if op == opGatherRows {
		for i := 0; i < nIDs; i++ {
			readRow(i, row)
			for _, v := range row[:cols] {
				out = putU32(out, math.Float32bits(v))
			}
		}
	} else {
		for o := 0; o < nOut; o++ {
			lo := int(binary.LittleEndian.Uint32(offsets[o*4:]))
			hi := int(binary.LittleEndian.Uint32(offsets[(o+1)*4:]))
			if lo > hi || hi > nIDs {
				t.mu.RUnlock()
				return out, fmt.Errorf("bad pooled offsets [%d,%d) for table %d", lo, hi, idx)
			}
			a := acc[:cols]
			clear(a)
			for i := lo; i < hi; i++ {
				readRow(i, row)
				for j, v := range row[:cols] {
					a[j] += v
				}
			}
			for _, v := range a {
				out = putU32(out, math.Float32bits(v))
			}
		}
	}
	t.mu.RUnlock()
	return out, nil
}
