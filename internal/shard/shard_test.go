package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"recsys/internal/embcache"
	"recsys/internal/nn"
	"recsys/internal/stats"
)

// startTier spins up n loopback shard servers, each serving the stores
// built by mkStores (called once per server, so servers that take row
// updates own their tables and their per-table locks protect them),
// plus a client pool over the tier.
func startTier(t testing.TB, n int, mkStores func() []nn.RowStore, sopts ServerOptions, copts Options) ([]*Server, *Client) {
	t.Helper()
	servers := make([]*Server, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(mkStores(), sopts)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	copts.Addrs = addrs
	c, err := Dial(copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, c
}

func randomIDs(rng *stats.RNG, n, rows int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = rng.Intn(rows)
	}
	return ids
}

func tensorsEqualBits(t *testing.T, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: %x, want %x (%g vs %g)",
				i, math.Float32bits(got[i]), math.Float32bits(want[i]), got[i], want[i])
		}
	}
}

func TestShardOfSpread(t *testing.T) {
	const n = 4
	var counts [n]int
	for id := int64(0); id < 100_000; id++ {
		s := ShardOf(id, n)
		if s < 0 || s >= n {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", id, n, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 15_000 || c > 35_000 {
			t.Fatalf("shard %d owns %d of 100000 rows — partitioner badly skewed: %v", s, c, counts)
		}
	}
	if got := ShardOf(12345, 1); got != 0 {
		t.Fatalf("single-shard ShardOf = %d, want 0", got)
	}
}

func TestWireRejectsTruncatedAndOversized(t *testing.T) {
	if _, err := decodeResp([]byte{wireVersion}, 1); err == nil {
		t.Fatal("decodeResp accepted a truncated payload")
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])), nil); err == nil {
		t.Fatal("readFrame accepted an oversized length prefix")
	}
	req := appendRowsReq(nil, 7, 0, 0, []uint32{1, 2, 3})
	if got := reqIDOf(req); got != 7 {
		t.Fatalf("reqIDOf = %d, want 7", got)
	}
}

// TestGatherBitIdenticalAcrossShardCounts is the tier's core contract:
// an SLSOp reading through the remote tier produces bit-identical
// output to the in-process gather, for fp32 and int8 tables, at every
// shard count (raw-row mode accumulates client-side in per-sample ID
// order, so shard count cannot perturb summation order).
func TestGatherBitIdenticalAcrossShardCounts(t *testing.T) {
	for _, int8T := range []bool{false, true} {
		rng := stats.NewRNG(5)
		tab0 := nn.NewEmbeddingTable("t0", 5000, 64, rng)
		tab1 := nn.NewEmbeddingTable("t1", 1200, 32, rng)
		var q0, q1 *nn.QuantizedTable
		if int8T {
			q0, q1 = nn.Quantize(tab0), nn.Quantize(tab1)
		}
		mk := func() []nn.RowStore {
			a, b := nn.NewSLSOp(tab0, 30), nn.NewSLSOp(tab1, 8)
			a.Quant, b.Quant = q0, q1
			return []nn.RowStore{a.LocalStore(), b.LocalStore()}
		}
		local0, local1 := nn.NewSLSOp(tab0, 30), nn.NewSLSOp(tab1, 8)
		local0.Quant, local1.Quant = q0, q1
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("int8=%v/shards=%d", int8T, n), func(t *testing.T) {
				_, c := startTier(t, n, mk, ServerOptions{}, Options{})
				remote0, remote1 := nn.NewSLSOp(tab0, 30), nn.NewSLSOp(tab1, 8)
				remote0.SetRowStore(c.Source(0, 5000, 64))
				remote1.SetRowStore(c.Source(1, 1200, 32))
				if !remote0.Async() || !remote1.Async() {
					t.Fatal("remote op did not switch to the async gather path")
				}
				idRNG := stats.NewRNG(99)
				const batch = 32
				ids0 := randomIDs(idRNG, batch*30, 5000)
				ids1 := randomIDs(idRNG, batch*8, 1200)
				for pass := 0; pass < 3; pass++ {
					got := remote0.ForwardEx(ids0, batch, nil, 0)
					want := local0.ForwardEx(ids0, batch, nil, 0)
					tensorsEqualBits(t, got.Data(), want.Data())
					got = remote1.ForwardEx(ids1, batch, nil, 0)
					want = local1.ForwardEx(ids1, batch, nil, 0)
					tensorsEqualBits(t, got.Data(), want.Data())
				}
			})
		}
	}
}

// TestGatherWithRowCacheHitsAndStaysIdentical checks the hot-row cache
// sits correctly above the remote store: repeated passes stay
// bit-identical while the second pass is served mostly from cache.
func TestGatherWithRowCacheHitsAndStaysIdentical(t *testing.T) {
	rng := stats.NewRNG(17)
	tab := nn.NewEmbeddingTable("t0", 2000, 64, rng)
	mk := func() []nn.RowStore { return []nn.RowStore{nn.NewSLSOp(tab, 20).LocalStore()} }
	_, c := startTier(t, 2, mk, ServerOptions{}, Options{})
	local := nn.NewSLSOp(tab, 20)
	remote := nn.NewSLSOp(tab, 20)
	remote.SetRowStore(c.Source(0, 2000, 64))
	cache, err := embcache.NewConcurrent(4096, 64, "lru", 0)
	if err != nil {
		t.Fatal(err)
	}
	remote.SetRowCache(cache)
	idRNG := stats.NewRNG(3)
	const batch = 16
	ids := randomIDs(idRNG, batch*20, 2000)
	for pass := 0; pass < 3; pass++ {
		got := remote.ForwardEx(ids, batch, nil, 1)
		want := local.ForwardEx(ids, batch, nil, 1)
		tensorsEqualBits(t, got.Data(), want.Data())
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("row cache recorded no hits across repeated identical passes: %+v", st)
	}
}

// TestGenInvalidationAcrossRPC covers the generation-token protocol:
// after a server-side sparse row update, the client observes the gen
// advance in the next gather's responses, drops its hot-row cache, and
// the pass after that serves the updated values.
func TestGenInvalidationAcrossRPC(t *testing.T) {
	const rows, cols, lookups = 3000, 64, 25
	mk := func() []nn.RowStore {
		rng := stats.NewRNG(21)
		return []nn.RowStore{nn.NewSLSOp(nn.NewEmbeddingTable("t0", rows, cols, rng), lookups).LocalStore()}
	}
	servers, c := startTier(t, 2, mk, ServerOptions{CacheRows: 512}, Options{})
	localRNG := stats.NewRNG(21)
	localTab := nn.NewEmbeddingTable("t0", rows, cols, localRNG)
	local := nn.NewSLSOp(localTab, lookups)
	remote := nn.NewSLSOp(localTab, lookups)
	remote.SetRowStore(c.Source(0, rows, cols))
	cache, err := embcache.NewConcurrent(256, cols, "lru", 0)
	if err != nil {
		t.Fatal(err)
	}
	remote.SetRowCache(cache)

	idRNG := stats.NewRNG(8)
	const batch = 24
	ids := randomIDs(idRNG, batch*lookups, rows)
	got := remote.ForwardEx(ids, batch, nil, 1)
	tensorsEqualBits(t, got.Data(), local.ForwardEx(ids, batch, nil, 1).Data())

	// Trainer sparse update: rewrite the rows the batch actually uses,
	// on every server (each holds the full table; only the owning shard
	// is consulted per row) and on the local reference.
	newRow := make([]float32, cols)
	for _, id := range ids[:2*lookups] {
		for j := range newRow {
			newRow[j] = float32(id) + float32(j)*0.25
		}
		for _, srv := range servers {
			if err := srv.UpdateRow(0, int64(id), newRow); err != nil {
				t.Fatal(err)
			}
		}
		local.LocalStore().(nn.RowWriter).WriteRow(int64(id), newRow)
	}

	// The first pass after the update discovers the gen change at Wait
	// time — too late for rows it already took from its own cache, the
	// same one-pass window in-process invalidation has. The pass after
	// that runs against the dropped cache and must be fully fresh.
	remote.ForwardEx(ids, batch, nil, 1)
	got = remote.ForwardEx(ids, batch, nil, 1)
	tensorsEqualBits(t, got.Data(), local.ForwardEx(ids, batch, nil, 1).Data())
}

// TestDeadShardSurfacesErrUnavailable: a dead shard must fail the
// forward with the tier's typed error (the engine maps it to 503), not
// hang or return partial sums.
func TestDeadShardSurfacesErrUnavailable(t *testing.T) {
	rng := stats.NewRNG(31)
	tab := nn.NewEmbeddingTable("t0", 4000, 32, rng)
	mk := func() []nn.RowStore { return []nn.RowStore{nn.NewSLSOp(tab, 16).LocalStore()} }
	servers, c := startTier(t, 2, mk, ServerOptions{}, Options{
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: time.Second,
	})
	remote := nn.NewSLSOp(tab, 16)
	remote.SetRowStore(c.Source(0, 4000, 32))
	ids := randomIDs(stats.NewRNG(1), 32*16, 4000)
	if out := remote.ForwardEx(ids, 32, nil, 1); out == nil {
		t.Fatal("healthy tier returned nil")
	}
	servers[1].Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("forward against a dead shard did not fail")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrUnavailable) {
			t.Fatalf("panic value %v, want an error wrapping ErrUnavailable", r)
		}
	}()
	remote.ForwardEx(ids, 32, nil, 1)
}

// TestPooledOpcodeWire exercises opGatherPooled at the wire level
// against one server: partial pooled sums come back in request-segment
// order (bit-identical to a local in-order sum on a single shard).
func TestPooledOpcodeWire(t *testing.T) {
	rng := stats.NewRNG(41)
	tab := nn.NewEmbeddingTable("t0", 500, 16, rng)
	op := nn.NewSLSOp(tab, 4)
	srv, err := NewServer([]nn.RowStore{op.LocalStore()}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	ids := []uint32{3, 11, 3, 200, 7, 7}
	offsets := []uint32{0, 3, 6} // two output rows of three lookups each
	req := appendPooledReq(nil, 9, 0, 0, ids, offsets)
	if err := writeFrame(bw, req); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := decodeResp(payload, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tr.nRows != 2 || tr.cols != 16 {
		t.Fatalf("pooled response shape %dx%d, want 2x16", tr.nRows, tr.cols)
	}
	row := make([]float32, 16)
	want := make([]float32, 16)
	scratch := make([]float32, 16)
	store := op.LocalStore()
	for o := 0; o < 2; o++ {
		clear(want)
		for _, id := range ids[offsets[o]:offsets[o+1]] {
			store.ReadRow(int64(id), scratch)
			for j := range want {
				want[j] += scratch[j]
			}
		}
		tr.rowF32(o, row)
		tensorsEqualBits(t, row, want)
	}
}

// TestRemoteUpdateRaceHammer runs concurrent forwards against
// concurrent server-side row updates and generation bumps — the
// -race-detector coverage for the generation protocol end to end
// (server per-table lock, client lastGen swaps, cache invalidation).
func TestRemoteUpdateRaceHammer(t *testing.T) {
	const rows, cols, lookups = 1000, 32, 10
	mk := func() []nn.RowStore {
		rng := stats.NewRNG(55)
		tab := nn.NewEmbeddingTable("t0", rows, cols, rng)
		op := nn.NewSLSOp(tab, lookups)
		op.Quant = nn.Quantize(tab) // exercise WriteRow's re-quantization
		return []nn.RowStore{op.LocalStore()}
	}
	servers, c := startTier(t, 2, mk, ServerOptions{CacheRows: 128}, Options{})
	mkRemote := func() *nn.SLSOp {
		rng := stats.NewRNG(55)
		tab := nn.NewEmbeddingTable("t0", rows, cols, rng)
		op := nn.NewSLSOp(tab, lookups)
		op.SetRowStore(c.Source(0, rows, cols))
		cache, err := embcache.NewConcurrent(64, cols, "lru", 0)
		if err != nil {
			t.Fatal(err)
		}
		op.SetRowCache(cache)
		return op
	}
	passes := 120
	if testing.Short() {
		passes = 30
	}
	done := make(chan struct{})
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		rng := stats.NewRNG(77)
		row := make([]float32, cols)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			id := int64(rng.Intn(rows))
			for j := range row {
				row[j] = float32(i + j)
			}
			for _, srv := range servers {
				if err := srv.UpdateRow(0, id, row); err != nil {
					t.Error(err)
					return
				}
			}
			if i%17 == 0 {
				servers[0].BumpGen(0)
			}
		}
	}()
	var fwd sync.WaitGroup
	for g := 0; g < 2; g++ {
		fwd.Add(1)
		go func(seed uint64) {
			defer fwd.Done()
			op := mkRemote()
			rng := stats.NewRNG(seed)
			for p := 0; p < passes; p++ {
				ids := randomIDs(rng, 8*lookups, rows)
				op.ForwardEx(ids, 8, nil, 1)
			}
		}(uint64(g) + 100)
	}
	fwd.Wait()
	close(done)
	hammer.Wait()
}
