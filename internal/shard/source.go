package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"recsys/internal/nn"
	"recsys/internal/tensor"
)

// tableSource adapts one embedding table of the remote tier to
// nn.GatherSource: BeginGather partitions the plan's miss list with
// ShardOf, fans the per-shard sub-plans out as opGatherRows requests,
// and scatters the raw rows into the caller's staging tensor.
// Client-side accumulation then runs in the original per-sample ID
// order, so the result is bit-identical to local serving regardless of
// shard count. Generation tokens cross the wire in every response:
// when a shard's token moves, Wait reports genChanged and the SLS op
// drops its hot-row cache.
type tableSource struct {
	c     *Client
	table uint32
	rows  int
	cols  int
	// lastGen[shard] is the last generation token seen from that shard
	// for this table (0 = never seen; servers start at 1).
	lastGen []atomic.Uint64
}

// Source returns table's view of the remote tier as an nn.GatherSource
// for a table of the given height and width. Attach it with
// nn.SLSOp.SetRowStore.
func (c *Client) Source(table, rows, cols int) nn.GatherSource {
	return &tableSource{
		c:       c,
		table:   uint32(table),
		rows:    rows,
		cols:    cols,
		lastGen: make([]atomic.Uint64, len(c.peers)),
	}
}

// Rows implements nn.RowStore.
func (t *tableSource) Rows() int { return t.rows }

// Cols implements nn.RowStore.
func (t *tableSource) Cols() int { return t.cols }

// ReadRow implements nn.RowStore with a synchronous single-row fetch.
// The planned paths never call it (a GatherSource routes through
// BeginGather); it exists for tooling and interface completeness. A
// tier failure panics with the wrapped ErrUnavailable, matching the
// batched path's error channel.
func (t *tableSource) ReadRow(id int64, dst []float32) {
	deadline := time.Now().Add(t.c.opts.RequestTimeout)
	reqID := t.c.reqID.Add(1)
	p := t.c.peers[ShardOf(id, len(t.c.peers))]
	req := appendRowsReq(nil, reqID, deadlineMicros(deadline), t.table, []uint32{uint32(id)})
	bp, err := p.do(req, deadline)
	if err != nil {
		panic(err)
	}
	defer respPool.Put(bp)
	tr, err := t.checkResp(*bp, reqID, 1)
	if err != nil {
		panic(err)
	}
	tr.rowF32(0, dst[:t.cols])
}

// checkResp decodes and validates one gather response against this
// table.
func (t *tableSource) checkResp(payload []byte, reqID uint32, wantRows int) (*tableResp, error) {
	tr, err := decodeResp(payload, reqID)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
	if tr == nil || tr.table != t.table || tr.cols != t.cols || tr.nRows != wantRows {
		return nil, fmt.Errorf("%w: response shape mismatch for table %d", ErrUnavailable, t.table)
	}
	return tr, nil
}

// part is one shard's slice of an in-flight gather.
type part struct {
	ids   []uint32 // row IDs, wire form
	rows  []int32  // destination staging rows, parallel to ids
	req   []byte   // encoded request frame payload
	reqID uint32
	err   error
}

// pending is one in-flight BeginGather fan-out. Pooled: Wait returns
// it to the pool.
type pending struct {
	src        *tableSource
	dst        *tensor.Tensor
	wg         sync.WaitGroup
	genChanged atomic.Bool
	parts      []part
}

var pendingPool = sync.Pool{New: func() any { return new(pending) }}

func deadlineMicros(deadline time.Time) uint32 {
	us := time.Until(deadline).Microseconds()
	if us < 0 {
		us = 0
	}
	if us > 1<<32-1 {
		us = 1<<32 - 1
	}
	return uint32(us)
}

// BeginGather implements nn.GatherSource. ids are copied out before it
// returns, honoring the contract that they alias caller scratch.
func (t *tableSource) BeginGather(ids []int64, dstRows []int32, dst *tensor.Tensor, deadline time.Time) nn.PendingGather {
	if deadline.IsZero() {
		deadline = time.Now().Add(t.c.opts.RequestTimeout)
	}
	g := pendingPool.Get().(*pending)
	g.src, g.dst = t, dst
	g.genChanged.Store(false)
	n := len(t.c.peers)
	if cap(g.parts) < n {
		g.parts = make([]part, n)
	}
	g.parts = g.parts[:n]
	for i := range g.parts {
		g.parts[i].ids = g.parts[i].ids[:0]
		g.parts[i].rows = g.parts[i].rows[:0]
		g.parts[i].err = nil
	}
	for i, id := range ids {
		si := ShardOf(id, n)
		p := &g.parts[si]
		p.ids = append(p.ids, uint32(id))
		p.rows = append(p.rows, dstRows[i])
	}
	us := deadlineMicros(deadline)
	for si := range g.parts {
		p := &g.parts[si]
		if len(p.ids) == 0 {
			continue
		}
		p.reqID = t.c.reqID.Add(1)
		// The request buffer is NOT recycled through the pool: an
		// abandoned hedge attempt can still be writing it to its socket
		// after the winning response has already let Wait return, so
		// reuse would race. The in-flight goroutines keep it alive; GC
		// reclaims it (the remote path has no zero-alloc contract).
		p.req = appendRowsReq(nil, p.reqID, us, t.table, p.ids)
		g.wg.Add(1)
		go g.run(si, deadline)
	}
	return g
}

// run executes one shard's sub-request and scatters its rows. Distinct
// shards write disjoint staging rows, so concurrent scatters never
// overlap.
func (g *pending) run(si int, deadline time.Time) {
	defer g.wg.Done()
	t := g.src
	p := &g.parts[si]
	bp, err := t.c.peers[si].do(p.req, deadline)
	if err != nil {
		p.err = err
		return
	}
	defer respPool.Put(bp)
	tr, err := t.checkResp(*bp, p.reqID, len(p.ids))
	if err != nil {
		p.err = err
		return
	}
	if old := t.lastGen[si].Swap(tr.gen); old != 0 && old != tr.gen {
		g.genChanged.Store(true)
	}
	for i, r := range p.rows {
		tr.rowF32(i, g.dst.Row(int(r))[:t.cols])
	}
}

// Wait implements nn.PendingGather.
func (g *pending) Wait() (bool, error) {
	g.wg.Wait()
	var err error
	for i := range g.parts {
		if g.parts[i].err != nil {
			err = g.parts[i].err
			break
		}
	}
	gc := g.genChanged.Load()
	g.src, g.dst = nil, nil
	pendingPool.Put(g)
	return gc, err
}
