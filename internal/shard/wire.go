package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Wire format: length-prefixed frames over TCP, little-endian
// throughout, one request in flight per connection (the client pools
// connections instead of pipelining, which keeps responses trivially
// matched and lets a hedge run on an independent socket).
//
//	frame    := u32 payloadLen | payload            (payloadLen ≤ maxFrame)
//	request  := u8 version | u8 opcode | u32 reqID | u32 deadlineUS |
//	            u16 nTables | table...
//	table    := u32 tableIdx | u32 nIDs |
//	            [opGatherPooled: u32 nOut | (nOut+1)×u32 offsets] |
//	            nIDs×u32 rowID
//	response := u8 version | u8 status | u32 reqID | body
//	body(OK) := u16 nTables | tableResp...
//	tableResp:= u32 tableIdx | u64 gen | u16 cols | u32 nRows |
//	            nRows×cols×f32 row values
//	body(err):= u16 msgLen | msg bytes
//
// deadlineUS is the client's remaining budget in microseconds at send
// time (0 = unbounded) — advisory load-shedding input for the server;
// the client enforces its deadline with socket deadlines regardless.
// For opGatherRows the response rows are the requested rows in request
// order; for opGatherPooled they are nOut partial pooled sums, row i
// summing request rows offsets[i]..offsets[i+1]. Pooled sums add in
// the server's (shard-local) order, so a multi-shard pooled gather is
// NOT bit-identical across shard counts — the engine path uses
// opGatherRows and accumulates client-side in per-sample ID order.
const (
	wireVersion = 1

	opGatherRows   = 1
	opGatherPooled = 2
	opPing         = 3

	statusOK         = 0
	statusBadRequest = 1
	statusError      = 2

	// maxFrame bounds a frame payload (64 MiB — a full-batch raw-row
	// response for the largest configured table widths fits with room
	// to spare) so a corrupt length prefix cannot balloon allocation.
	maxFrame = 1 << 26
)

// errProto wraps malformed-frame conditions; the side that sees it
// closes the connection.
var errProto = errors.New("shard: protocol error")

func putU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// reader is a bounds-checked cursor over one frame payload. After any
// short read it latches err and returns zeros, so decoders can parse
// straight-line and check err once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated frame at byte %d", errProto, r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// writeFrame length-prefixes payload onto bw. The caller flushes.
func writeFrame(bw *bufio.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", errProto, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// readFrame reads one frame payload into buf (grown as needed) and
// returns the filled slice. io.EOF before the length prefix is a clean
// close and is returned verbatim.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("shard: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", errProto, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n, n+n/4)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("shard: read frame body: %w", err)
	}
	return buf, nil
}

// appendRowsReq encodes a single-table opGatherRows request.
func appendRowsReq(b []byte, reqID, deadlineUS, table uint32, ids []uint32) []byte {
	b = append(b, wireVersion, opGatherRows)
	b = putU32(b, reqID)
	b = putU32(b, deadlineUS)
	b = putU16(b, 1)
	b = putU32(b, table)
	b = putU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = putU32(b, id)
	}
	return b
}

// appendPooledReq encodes a single-table opGatherPooled request:
// offsets is the CSR segmentation of ids into output rows (len nOut+1,
// offsets[0] == 0, offsets[nOut] == len(ids)).
func appendPooledReq(b []byte, reqID, deadlineUS, table uint32, ids []uint32, offsets []uint32) []byte {
	b = append(b, wireVersion, opGatherPooled)
	b = putU32(b, reqID)
	b = putU32(b, deadlineUS)
	b = putU16(b, 1)
	b = putU32(b, table)
	b = putU32(b, uint32(len(ids)))
	b = putU32(b, uint32(len(offsets)-1))
	for _, o := range offsets {
		b = putU32(b, o)
	}
	for _, id := range ids {
		b = putU32(b, id)
	}
	return b
}

// appendPingReq encodes an opPing request (connection liveness / Dial
// validation; the response carries zero tables).
func appendPingReq(b []byte, reqID uint32) []byte {
	b = append(b, wireVersion, opPing)
	b = putU32(b, reqID)
	b = putU32(b, 0)
	b = putU16(b, 0)
	return b
}

// tableResp is one decoded per-table response section. Rows aliases
// the frame buffer; consume before the next readFrame on the
// connection.
type tableResp struct {
	table uint32
	gen   uint64
	cols  int
	nRows int
	rows  []byte // nRows*cols*4 bytes of little-endian f32
}

// rowF32 decodes row i of a tableResp into dst (len cols).
func (t *tableResp) rowF32(i int, dst []float32) {
	off := i * t.cols * 4
	raw := t.rows[off : off+t.cols*4]
	for j := range dst {
		dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
	}
}

// decodeResp parses a response payload, returning its single table
// section (nil for ping responses). A non-OK status is surfaced as an
// error carrying the server's message.
func decodeResp(payload []byte, wantReqID uint32) (*tableResp, error) {
	r := reader{b: payload}
	if v := r.u8(); r.err == nil && v != wireVersion {
		return nil, fmt.Errorf("%w: version %d", errProto, v)
	}
	status := r.u8()
	reqID := r.u32()
	if r.err == nil && reqID != wantReqID {
		return nil, fmt.Errorf("%w: response for request %d, want %d", errProto, reqID, wantReqID)
	}
	if status != statusOK {
		msg := string(r.bytes(int(r.u16())))
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("shard: server status %d: %s", status, msg)
	}
	nTables := r.u16()
	if nTables == 0 {
		return nil, r.err
	}
	if r.err == nil && nTables != 1 {
		return nil, fmt.Errorf("%w: %d tables in response, want 1", errProto, nTables)
	}
	t := &tableResp{table: r.u32(), gen: r.u64(), cols: int(r.u16()), nRows: int(r.u32())}
	t.rows = r.bytes(t.nRows * t.cols * 4)
	if r.err != nil {
		return nil, r.err
	}
	return t, nil
}
