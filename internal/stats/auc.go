package stats

import "sort"

// AUC computes the area under the ROC curve for binary labels (0/1)
// given real-valued scores, using the rank-statistic formulation with
// midrank tie handling. It returns 0.5 when either class is absent.
func AUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic("stats: AUC length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Midranks for ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}

	var posRankSum float64
	pos, neg := 0, 0
	for i, l := range labels {
		if l == 1 {
			pos++
			posRankSum += ranks[i]
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (posRankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
}
