package stats

import (
	"math"
	"testing"
)

func TestAUCPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 1.0 {
		t.Errorf("perfect ranking AUC = %v, want 1", got)
	}
}

func TestAUCInvertedRanking(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 0.0 {
		t.Errorf("inverted ranking AUC = %v, want 0", got)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := NewRNG(1)
	n := 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 0.02 {
		t.Errorf("random AUC = %v, want ~0.5", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 via midranks.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	if got := AUC(scores, labels); got != 0.5 {
		t.Errorf("all-tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if got := AUC([]float64{0.1, 0.9}, []int{1, 1}); got != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", got)
	}
	if got := AUC([]float64{0.1, 0.9}, []int{0, 0}); got != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", got)
	}
}

func TestAUCPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AUC([]float64{1}, []int{1, 0})
}

func TestAUCKnownValue(t *testing.T) {
	// One inversion among 2 pos × 2 neg pairs: AUC = 3/4.
	scores := []float64{0.9, 0.3, 0.4, 0.1}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}
