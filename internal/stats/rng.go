// Package stats provides deterministic random number generation,
// percentile and histogram utilities used throughout the simulator.
//
// Every experiment in this repository must be reproducible bit-for-bit,
// so all randomness flows through RNG, a small splitmix64/xoshiro-style
// generator seeded explicitly. The standard library's math/rand is
// deliberately avoided in simulation code paths so that a seed uniquely
// determines every figure in EXPERIMENTS.md.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator
// (xorshift64* core) suitable for simulation workloads.
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because the xorshift core has a fixed
// point at zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Warm up so that small seeds diverge quickly.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Reject u1 == 0 to keep Log finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1).
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent by hashing the parent's next output.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}
