package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) bucket %d badly skewed: %d/100000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitDecorrelated(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlapped %d times", same)
	}
}

func TestZipfRange(t *testing.T) {
	r := NewRNG(17)
	z := NewZipf(r, 1000, 1.0)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(19)
	z := NewZipf(r, 10000, 1.2)
	n := 100000
	top10 := 0
	for i := 0; i < n; i++ {
		if z.Next() < 10 {
			top10++
		}
	}
	// With s=1.2 over 10k items the top-10 ranks should dominate
	// far beyond the uniform expectation of 0.1%.
	if frac := float64(top10) / float64(n); frac < 0.30 {
		t.Errorf("Zipf(1.2) top-10 mass = %.3f, want > 0.30", frac)
	}
}

func TestZipfMonotoneRankPopularity(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 300000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Errorf("Zipf popularity not decreasing: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, tc := range []struct {
		n int64
		s float64
	}{{0, 1}, {-5, 1}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(r, tc.n, tc.s)
		}()
	}
}
