package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers distribution
// queries (mean, percentiles, min/max). It keeps every observation, so
// it is intended for simulation-scale sample counts (≤ millions).
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns an empty Sample with capacity hint n.
func NewSample(n int) *Sample {
	return &Sample{values: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll records a batch of observations.
func (s *Sample) AddAll(vs []float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the population standard deviation, or 0 for fewer than
// two observations.
func (s *Sample) Std() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Summary is a compact five-number-plus-mean description of a Sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, P5, P50  float64
	P95, P99, Max float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:    s.Len(),
		Mean: s.Mean(),
		Std:  s.Std(),
		Min:  s.Min(),
		P5:   s.Percentile(5),
		P50:  s.Percentile(50),
		P95:  s.Percentile(95),
		P99:  s.Percentile(99),
		Max:  s.Max(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p5=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P5, s.P50, s.P95, s.P99, s.Max)
}

// Histogram counts observations into uniform-width bins over [lo, hi).
// Observations outside the range are clamped into the edge bins so that
// totals are preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins uniform-width bins spanning
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: histogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total reports the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Modes returns bin-center values of local maxima whose count is at
// least minFrac of the total. It is used to detect the multi-modal
// operator-latency distributions of Figure 11a.
func (h *Histogram) Modes(minFrac float64) []float64 {
	var modes []float64
	if h.total == 0 {
		return modes
	}
	minCount := int(minFrac * float64(h.total))
	for i := range h.Counts {
		c := h.Counts[i]
		if c < minCount || c == 0 {
			continue
		}
		left := 0
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := 0
		if i < len(h.Counts)-1 {
			right = h.Counts[i+1]
		}
		if c >= left && c > right || c > left && c >= right {
			modes = append(modes, h.BinCenter(i))
		}
	}
	return modes
}
