package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.Std() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleMeanStd(t *testing.T) {
	s := NewSample(5)
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("std = %v, want 2", got)
	}
}

func TestPercentileExact(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 101; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := s.Percentile(50); got != 51 {
		t.Errorf("p50 = %v, want 51", got)
	}
	if got := s.Percentile(100); got != 101 {
		t.Errorf("p100 = %v, want 101", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{0, 10})
	if got := s.Percentile(25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p25 = %v, want 2.5", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		s := NewSample(0)
		n := 2 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(r.Float64() * 100)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileWithinBounds(t *testing.T) {
	f := func(seed uint64, p float64) bool {
		p = math.Mod(math.Abs(p), 100)
		r := NewRNG(seed)
		s := NewSample(0)
		n := 1 + r.Intn(100)
		for i := 0; i < n; i++ {
			s.Add(r.NormFloat64())
		}
		v := s.Percentile(p)
		return v >= s.Min() && v <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 1000 {
		t.Errorf("N = %d, want 1000", sum.N)
	}
	if sum.P50 < 490 || sum.P50 > 510 {
		t.Errorf("p50 = %v, want ~500", sum.P50)
	}
	if sum.P99 < 980 {
		t.Errorf("p99 = %v, want >= 980", sum.P99)
	}
	if len(sum.String()) == 0 {
		t.Error("empty summary string")
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.Total() != 10 {
		t.Errorf("total = %d, want 10", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(50)
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Errorf("out-of-range values not clamped: %v", h.Counts)
	}
}

func TestHistogramModes(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	r := NewRNG(31)
	// Two well-separated normal modes at 25 and 75.
	for i := 0; i < 5000; i++ {
		h.Add(25 + 3*r.NormFloat64())
		h.Add(75 + 3*r.NormFloat64())
	}
	modes := h.Modes(0.01)
	foundLow, foundHigh := false, false
	for _, m := range modes {
		if m > 20 && m < 30 {
			foundLow = true
		}
		if m > 70 && m < 80 {
			foundHigh = true
		}
	}
	if !foundLow || !foundHigh {
		t.Errorf("bimodal distribution modes = %v, want one near 25 and one near 75", modes)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 5) },
		func() { NewHistogram(10, 5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v, want 0.5", got)
	}
	if got := h.BinCenter(9); got != 9.5 {
		t.Errorf("BinCenter(9) = %v, want 9.5", got)
	}
}
