package stats

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(k+1)^s. It is used to generate skewed sparse-ID streams that mimic
// the locality observed in production embedding-table traces.
//
// Sampling uses the rejection-inversion method of Hörmann and
// Derflinger, which is O(1) per sample independent of n.
type Zipf struct {
	rng              *RNG
	n                float64
	s                float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hIntegralX1      float64
	hIntegralN       float64
	threshold        float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0,
// s != 1 handled exactly and s == 1 handled via a small epsilon offset.
// It panics if n <= 0 or s <= 0.
func NewZipf(rng *RNG, n int64, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("stats: Zipf with non-positive s")
	}
	if s == 1 {
		s = 1 + 1e-9 // avoid the harmonic special case without a second code path
	}
	z := &Zipf{
		rng:              rng,
		n:                float64(n),
		s:                s,
		oneMinusS:        1 - s,
		oneOverOneMinusS: 1 / (1 - s),
	}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.threshold = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// hIntegral is the antiderivative of h(x) = x^-s.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series fallback near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a series fallback near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next returns the next sample in [0, n), with 0 the most popular rank.
func (z *Zipf) Next() int64 {
	for {
		u := z.hIntegralN + z.rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.threshold || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int64(k) - 1
		}
	}
}
