package tensor

// Arena is a bump allocator for forward-pass scratch tensors. A
// steady-state inference pass allocates every activation from an
// arena and calls Reset between requests, so the per-request heap
// allocation count drops to zero once the slab has grown to the
// pass's working-set size (the paper's at-scale inference loop runs
// the same operator sequence per request, so the working set is
// fixed after the first pass).
//
// An Arena is NOT safe for concurrent use; give each inference
// worker its own. Tensors returned by Alloc alias the arena's slab
// and become invalid at the next Reset — copy anything that must
// outlive the pass.
type Arena struct {
	slab []float32
	off  int
	// total counts floats handed out since the last Reset. When a pass
	// outgrows the slab, Reset uses it to allocate one right-sized
	// slab, so a fixed per-pass working set reaches zero allocations
	// by the second pass.
	total int

	// tensors caches the *Tensor headers (and their shape slices)
	// handed out since the last Reset, reused in order on the next
	// pass so header allocation is also amortized to zero.
	tensors []*Tensor
	used    int

	ptrs []*Tensor // scratch for Ptrs

	// u8slab is a separate byte slab for integer scratch (the int8
	// compute path's quantized activations), bump-allocated like the
	// float slab so the int8 hot path also reaches zero steady-state
	// allocations.
	u8slab  []uint8
	u8off   int
	u8total int

	// i16slab/i32slab: integer scratch for the register-tiled int8 GEMM
	// (widened activation codes and per-row zero points), following the
	// same bump-and-right-size discipline as u8slab.
	i16slab  []int16
	i16off   int
	i16total int
	i32slab  []int32
	i32off   int
	i32total int
}

// NewArena returns an empty arena; the slab grows on demand.
func NewArena() *Arena { return &Arena{} }

// Alloc returns a zero-filled tensor carved from the arena. Shape
// rules match New. The shape check is inlined with constant-string
// panics (rather than checkShape's formatted ones) so the variadic
// slice never escapes — Alloc must stay heap-allocation-free on the
// steady-state path.
func (a *Arena) Alloc(shape ...int) *Tensor {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in shape")
		}
		n *= d
	}
	data := a.alloc(n)
	var t *Tensor
	if a.used < len(a.tensors) {
		t = a.tensors[a.used]
	} else {
		t = &Tensor{}
		a.tensors = append(a.tensors, t)
	}
	a.used++
	t.shape = append(t.shape[:0], shape...)
	t.data = data
	return t
}

// AllocUninit is Alloc without the zero fill: the returned tensor's
// contents are whatever a previous pass left in the slab. Only for
// scratch that is fully overwritten before any element is read (e.g.
// the gather staging buffer, where every row is materialized before
// accumulation) — the memclr is pure overhead there and measurably so
// on the SLS hot path.
func (a *Arena) AllocUninit(shape ...int) *Tensor {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in shape")
		}
		n *= d
	}
	data := a.allocRaw(n)
	var t *Tensor
	if a.used < len(a.tensors) {
		t = a.tensors[a.used]
	} else {
		t = &Tensor{}
		a.tensors = append(a.tensors, t)
	}
	a.used++
	t.shape = append(t.shape[:0], shape...)
	t.data = data
	return t
}

// alloc carves n zeroed float32s.
func (a *Arena) alloc(n int) []float32 {
	d := a.allocRaw(n)
	clear(d)
	return d
}

// allocRaw carves n float32s without clearing them. When the slab is
// exhausted a larger one is allocated; tensors handed out earlier keep
// referencing the old slab, so they stay valid for the remainder of
// the pass.
func (a *Arena) allocRaw(n int) []float32 {
	a.total += n
	if a.off+n > len(a.slab) {
		size := 2 * len(a.slab)
		if size < a.total {
			size = a.total
		}
		if size < 1024 {
			size = 1024
		}
		a.slab = make([]float32, size)
		a.off = 0
	}
	d := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return d
}

// AllocU8 carves n uninitialized bytes from the arena's byte slab.
// Like AllocUninit, the contents are whatever a previous pass left
// behind — only for scratch fully overwritten before any read (the
// int8 activation buffer is written row by row before each dot). The
// slice is invalidated by Reset.
func (a *Arena) AllocU8(n int) []uint8 {
	a.u8total += n
	if a.u8off+n > len(a.u8slab) {
		size := 2 * len(a.u8slab)
		if size < a.u8total {
			size = a.u8total
		}
		if size < 1024 {
			size = 1024
		}
		a.u8slab = make([]uint8, size)
		a.u8off = 0
	}
	d := a.u8slab[a.u8off : a.u8off+n : a.u8off+n]
	a.u8off += n
	return d
}

// AllocI16 carves n uninitialized int16s from the arena's i16 slab —
// the widened activation-code buffer of the register-tiled int8 GEMM
// (VPMADDWD consumes i16 lanes, so codes are stored pre-widened). Same
// contract as AllocU8: contents are stale until overwritten, and the
// slice is invalidated by Reset.
func (a *Arena) AllocI16(n int) []int16 {
	a.i16total += n
	if a.i16off+n > len(a.i16slab) {
		size := 2 * len(a.i16slab)
		if size < a.i16total {
			size = a.i16total
		}
		if size < 1024 {
			size = 1024
		}
		a.i16slab = make([]int16, size)
		a.i16off = 0
	}
	d := a.i16slab[a.i16off : a.i16off+n : a.i16off+n]
	a.i16off += n
	return d
}

// AllocI32 carves n uninitialized int32s from the arena's i32 slab —
// per-row zero points for the int8 GEMM epilogue. Same contract as
// AllocU8.
func (a *Arena) AllocI32(n int) []int32 {
	a.i32total += n
	if a.i32off+n > len(a.i32slab) {
		size := 2 * len(a.i32slab)
		if size < a.i32total {
			size = a.i32total
		}
		if size < 256 {
			size = 256
		}
		a.i32slab = make([]int32, size)
		a.i32off = 0
	}
	d := a.i32slab[a.i32off : a.i32off+n : a.i32off+n]
	a.i32off += n
	return d
}

// Ptrs returns a reusable []*Tensor of length n with nil entries,
// for operator-input scratch (e.g. the Concat input list). The slice
// is owned by the arena and overwritten by the next Ptrs call.
func (a *Arena) Ptrs(n int) []*Tensor {
	if cap(a.ptrs) < n {
		a.ptrs = make([]*Tensor, n)
	}
	p := a.ptrs[:n]
	for i := range p {
		p[i] = nil
	}
	return p
}

// Reset recycles the arena for the next pass. All tensors previously
// returned by Alloc are invalidated: their storage and headers will
// be handed out again. If the finished pass outgrew the slab, one
// right-sized slab is allocated now so the next identical pass fits.
func (a *Arena) Reset() {
	if a.total > len(a.slab) {
		a.slab = make([]float32, a.total)
	}
	if a.u8total > len(a.u8slab) {
		a.u8slab = make([]uint8, a.u8total)
	}
	if a.i16total > len(a.i16slab) {
		a.i16slab = make([]int16, a.i16total)
	}
	if a.i32total > len(a.i32slab) {
		a.i32slab = make([]int32, a.i32total)
	}
	a.off = 0
	a.total = 0
	a.used = 0
	a.u8off = 0
	a.u8total = 0
	a.i16off = 0
	a.i16total = 0
	a.i32off = 0
	a.i32total = 0
}

// Cap returns the slab capacity in float32 elements (for tests and
// capacity accounting).
func (a *Arena) Cap() int { return len(a.slab) }
