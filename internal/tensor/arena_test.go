package tensor

import (
	"sync"
	"testing"
)

func TestArenaAllocZeroedAfterReuse(t *testing.T) {
	a := NewArena()
	x := a.Alloc(4, 8)
	x.Fill(3.5)
	a.Reset()
	y := a.Alloc(4, 8)
	for i, v := range y.Data() {
		if v != 0 {
			t.Fatalf("reused slab element %d = %v, want 0", i, v)
		}
	}
}

func TestArenaReusesHeadersAndSlab(t *testing.T) {
	a := NewArena()
	x := a.Alloc(16, 16)
	a.Reset()
	y := a.Alloc(16, 16)
	if x != y {
		t.Fatal("arena did not reuse the tensor header after Reset")
	}
	if &x.Data()[0] != &y.Data()[0] {
		t.Fatal("arena did not reuse the slab after Reset")
	}
}

// TestArenaGrowthKeepsEarlierTensorsValid forces a mid-pass slab
// replacement and checks tensors handed out earlier keep their
// contents.
func TestArenaGrowthKeepsEarlierTensorsValid(t *testing.T) {
	a := NewArena()
	first := a.Alloc(10, 10)
	first.Fill(1.25)
	// Far larger than the initial slab, forcing a new one.
	big := a.Alloc(5000, 10)
	big.Fill(2)
	for _, v := range first.Data() {
		if v != 1.25 {
			t.Fatalf("earlier tensor corrupted by slab growth: got %v", v)
		}
	}
}

func TestArenaSteadyStateNoAllocs(t *testing.T) {
	a := NewArena()
	pass := func() {
		a.Reset()
		x := a.Alloc(32, 16)
		y := a.Alloc(32, 64)
		_ = a.Ptrs(4)
		x.Fill(1)
		y.Fill(2)
	}
	pass() // warm the slab and header cache
	allocs := testing.AllocsPerRun(100, pass)
	if allocs != 0 {
		t.Fatalf("steady-state arena pass allocates %v times, want 0", allocs)
	}
}

func TestArenaPtrs(t *testing.T) {
	a := NewArena()
	p := a.Ptrs(3)
	if len(p) != 3 {
		t.Fatalf("Ptrs length %d, want 3", len(p))
	}
	p[0] = a.Alloc(1, 1)
	q := a.Ptrs(2)
	if q[0] != nil || q[1] != nil {
		t.Fatal("Ptrs entries not cleared")
	}
}

// TestArenaPerWorkerUnderRace exercises independent arenas on
// concurrent goroutines — the engine's usage pattern — so `go test
// -race` can vouch for the no-shared-state design.
func TestArenaPerWorkerUnderRace(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			a := NewArena()
			for pass := 0; pass < 50; pass++ {
				a.Reset()
				x := a.Alloc(8, 8)
				x.Fill(float32(seed))
				for _, v := range x.Data() {
					if v != float32(seed) {
						t.Errorf("worker %d saw %v", seed, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
