package tensor

import (
	"fmt"
	"os"
)

// Kernel tiers. The package selects the fastest supported tier once at
// init; RECSYS_KERNEL overrides the choice (for CI legs that must
// exercise the portable kernels on AVX2 hardware, and for A/B
// measurement in cmd/recbench -fig10).
//
// Numerics contract: the KernelGo tier is the reference — its results
// are bit-identical across platforms and releases. KernelAVX2 fuses
// each multiply-add of the GEMM inner loop into one FMA (one rounding
// instead of two) and re-associates edge-row accumulation, so fp32
// GEMM results differ from the Go tier by a relative epsilon
// (FloatsClose is the shared assert for that comparison). The SLS
// kernels (AddF32, DequantI8) deliberately avoid FMA and keep the
// per-element operation order, and the int8 kernels are integer
// arithmetic — all three are bit-identical across tiers.
const (
	KernelGo   = "go"
	KernelAVX2 = "avx2"
)

// kernelEnv is the environment variable consulted once at init to
// force a tier: RECSYS_KERNEL=go pins the portable reference kernels,
// RECSYS_KERNEL=avx2 demands the assembly tier (falling back with a
// warning when the CPU lacks AVX2+FMA).
const kernelEnv = "RECSYS_KERNEL"

var (
	// hasAVX2FMA records hardware+OS support (CPUID AVX2 and FMA, OS
	// YMM state saving), detected once at init.
	hasAVX2FMA bool
	// useAVX2 is the active selection consulted by every dispatching
	// kernel. It is written at init and by SetKernel; SetKernel must
	// not race with running kernels (switch tiers only while no
	// inference is in flight — tests and recbench sweeps do).
	useAVX2 bool
)

func init() {
	hasAVX2FMA = detectAVX2FMA()
	useAVX2 = hasAVX2FMA
	if env := os.Getenv(kernelEnv); env != "" {
		if err := SetKernel(env); err != nil {
			fmt.Fprintf(os.Stderr, "tensor: %s=%q ignored: %v\n", kernelEnv, env, err)
		}
	}
}

// KernelTier returns the active kernel tier (KernelGo or KernelAVX2).
func KernelTier() string {
	if useAVX2 {
		return KernelAVX2
	}
	return KernelGo
}

// KernelSupported reports whether this machine can run the given tier.
func KernelSupported(tier string) bool {
	switch tier {
	case KernelGo:
		return true
	case KernelAVX2:
		return hasAVX2FMA
	}
	return false
}

// SetKernel selects the active kernel tier. It returns an error (and
// leaves the selection unchanged) for an unknown tier or one this
// machine cannot run. Not safe to call concurrently with running
// kernels: switch tiers only between passes.
func SetKernel(tier string) error {
	switch tier {
	case KernelGo:
		useAVX2 = false
	case KernelAVX2:
		if !hasAVX2FMA {
			return fmt.Errorf("tensor: kernel tier %q not supported on this CPU (need AVX2+FMA)", tier)
		}
		useAVX2 = true
	default:
		return fmt.Errorf("tensor: unknown kernel tier %q (want %q or %q)", tier, KernelGo, KernelAVX2)
	}
	return nil
}

// FloatsClose reports whether got and want have equal length and every
// pair differs by at most atol + rtol·|want|. It is the shared assert
// for asm-vs-Go fp32 comparisons, where FMA fusion makes bit equality
// the wrong standard: a fused multiply-add performs one rounding where
// the Go tier performs two, so a relative epsilon is the legitimate
// bound. (The pure-Go tier stays bit-exact and does not need this.)
func FloatsClose(got, want []float32, rtol, atol float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		diff := float64(got[i]) - float64(want[i])
		if diff < 0 {
			diff = -diff
		}
		ref := float64(want[i])
		if ref < 0 {
			ref = -ref
		}
		if diff > atol+rtol*ref {
			return false
		}
	}
	return true
}

// TensorsClose is FloatsClose over two tensors, requiring equal shapes.
func TensorsClose(a, b *Tensor, rtol, atol float64) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return FloatsClose(a.data, b.data, rtol, atol)
}

// GemmBitExact reports whether the active tier's GEMM kernels are
// bit-identical to the pure-Go reference. Equivalence tests branch on
// this: exact comparison on the Go tier, GemmTol epsilon on AVX2.
func GemmBitExact() bool { return !useAVX2 }

// GemmTol returns the numerics-contract tolerances for comparing a
// tier-dispatched GEMM result (inner dimension k) against the pure-Go
// reference: rtol covers the per-FMA rounding difference on
// well-conditioned outputs, while atol grows with k because a
// cancelling dot product can land near zero while its rounding drift
// scales with the sum of term magnitudes (measured drift at k=512 is
// ~3e-5; 1e-6·k leaves ~20× margin).
func GemmTol(k int) (rtol, atol float64) { return 1e-5, 1e-6 * float64(k) }

// GemmClose compares a GEMM output against the reference under the
// active tier's contract: bit equality on the Go tier, GemmTol(k)
// epsilon otherwise. k is the GEMM inner dimension (use the largest
// layer width when comparing whole-network outputs).
func GemmClose(got, want *Tensor, k int) bool {
	if GemmBitExact() {
		return Equal(got, want, 0)
	}
	rtol, atol := GemmTol(k)
	return TensorsClose(got, want, rtol, atol)
}
