//go:build amd64

package tensor

// cpuid executes the CPUID instruction with the given leaf/subleaf.
// Implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled XSAVE state
// mask). Only valid when CPUID reports OSXSAVE. Implemented in
// cpu_amd64.s.
func xgetbv() (eax, edx uint32)

// detectAVX2FMA reports whether this CPU and OS can run the AVX2/FMA
// kernel tier: the CPU must advertise AVX, FMA, and AVX2, and the OS
// must save the XMM+YMM register state across context switches
// (XCR0 bits 1 and 2) — the same checks Go's runtime performs for its
// own AVX2 memmove.
func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		cpuidFMA     = 1 << 12 // leaf 1 ECX
		cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
		cpuidAVX     = 1 << 28 // leaf 1 ECX
		cpuidAVX2    = 1 << 5  // leaf 7 EBX
		xcr0XMM      = 1 << 1
		xcr0YMM      = 1 << 2
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&cpuidFMA == 0 || ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&(xcr0XMM|xcr0YMM) != xcr0XMM|xcr0YMM {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&cpuidAVX2 != 0
}
