//go:build !amd64

package tensor

// detectAVX2FMA: non-amd64 builds have no assembly tier; the portable
// Go kernels (bit-identical to the amd64 RECSYS_KERNEL=go tier) are
// the only option.
func detectAVX2FMA() bool { return false }
