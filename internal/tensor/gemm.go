package tensor

import "fmt"

// blockSize is the cache-blocking tile edge for Gemm. 64 float32 rows
// keep a tile of each operand within a typical 32 KB L1.
const blockSize = 64

// Gemm computes C = A·B + C for row-major matrices, where A is m×k,
// B is k×n, and C is m×n. It panics on shape mismatches. The kernel is
// register/cache blocked: the innermost loop runs down contiguous rows
// of B so the compiler can keep the accumulation vectorizable.
func Gemm(a, b, c *Tensor) {
	m, k, n := checkGemm(a, b, c)
	ad, bd, cd := a.data, b.data, c.data
	for i0 := 0; i0 < m; i0 += blockSize {
		iMax := min(i0+blockSize, m)
		for p0 := 0; p0 < k; p0 += blockSize {
			pMax := min(p0+blockSize, k)
			for j0 := 0; j0 < n; j0 += blockSize {
				jMax := min(j0+blockSize, n)
				for i := i0; i < iMax; i++ {
					arow := ad[i*k : (i+1)*k]
					crow := cd[i*n : (i+1)*n]
					for p := p0; p < pMax; p++ {
						aip := arow[p]
						if aip == 0 {
							continue
						}
						brow := bd[p*n : (p+1)*n]
						for j := j0; j < jMax; j++ {
							crow[j] += aip * brow[j]
						}
					}
				}
			}
		}
	}
}

func checkGemm(a, b, c *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: Gemm requires rank-2 operands")
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: Gemm inner dimensions %d and %d differ", k, b.shape[0]))
	}
	n = b.shape[1]
	if c.shape[0] != m || c.shape[1] != n {
		panic(fmt.Sprintf("tensor: Gemm output shape %v, want [%d %d]", c.shape, m, n))
	}
	return m, k, n
}

// MatMul allocates and returns A·B.
func MatMul(a, b *Tensor) *Tensor {
	c := New(a.shape[0], b.shape[1])
	Gemm(a, b, c)
	return c
}

// Gemv computes y = A·x + y where A is m×n, x has length n, and y has
// length m.
func Gemv(a *Tensor, x, y []float32) {
	if a.Rank() != 2 {
		panic("tensor: Gemv requires a rank-2 matrix")
	}
	m, n := a.shape[0], a.shape[1]
	if len(x) != n || len(y) != m {
		panic(fmt.Sprintf("tensor: Gemv shapes A=%v x=%d y=%d", a.shape, len(x), len(y)))
	}
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] += sum
	}
}

// Axpy computes y += alpha * x element-wise.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// AddBiasRows adds the bias vector to every row of a rank-2 tensor
// in place.
func AddBiasRows(t *Tensor, bias []float32) {
	if t.Rank() != 2 {
		panic("tensor: AddBiasRows requires a rank-2 tensor")
	}
	n := t.shape[1]
	if len(bias) != n {
		panic(fmt.Sprintf("tensor: bias length %d, want %d", len(bias), n))
	}
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// Transpose returns the transposed copy of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
