//go:build amd64

#include "textflag.h"

// AVX2/FMA GEMM micro-kernels over the PackedB panel layout (pack.go):
// within one k-panel of kc rows, the nr=8-wide column tile for output
// columns [j0, j0+8) is stored contiguously as kc consecutive 8-float
// rows, so the kernels stream B with unit stride and perfect ymm
// alignment of access pattern regardless of n.
//
// Numerics: each multiply-add is a fused FMA (one rounding), so
// results differ from the pure-Go tier by a relative epsilon — see the
// numerics contract in cpu.go.

// func gemmKernel8x8(a *float32, lda int, tile *float32, c *float32, ldc int, kc int)
//
// Register-tiled 8-row × 8-column micro-kernel:
//
//	C[r][0:8] += Σ_{p<kc} A[r*lda+p] · tile[p*8 : p*8+8]   for r in 0..7
//
// a points at A[row0][p0] (row stride lda elements), tile at the
// packed 8-wide column tile of the current k-panel, c at C[row0][j0]
// (row stride ldc elements). Eight ymm accumulators (one per row) stay
// live across the whole panel; each k-step is one tile load, eight
// broadcasts, and eight FMAs. The two-base addressing below (DI = row
// 0, BX = row 3) reaches all eight row pointers with scaled-index
// modes, so the inner loop advances just three pointers.
TEXT ·gemmKernel8x8(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), DI
	MOVQ lda+8(FP), SI
	MOVQ tile+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ ldc+32(FP), R9
	MOVQ kc+40(FP), CX

	SHLQ $2, SI           // lda in bytes
	SHLQ $2, R9           // ldc in bytes
	LEAQ (SI)(SI*2), R10  // 3·lda bytes
	LEAQ (DI)(R10*1), BX  // &A[row3][p0]
	LEAQ (R9)(R9*2), R12  // 3·ldc bytes
	LEAQ (R8)(R9*4), R13  // &C[row4][j0]

	// Load the eight C accumulator rows.
	VMOVUPS (R8), Y0
	VMOVUPS (R8)(R9*1), Y1
	VMOVUPS (R8)(R9*2), Y2
	VMOVUPS (R8)(R12*1), Y3
	VMOVUPS (R13), Y4
	VMOVUPS (R13)(R9*1), Y5
	VMOVUPS (R13)(R9*2), Y6
	VMOVUPS (R13)(R12*1), Y7

loop:
	VMOVUPS (DX), Y8          // 8-wide B tile row for this p
	VBROADCASTSS (DI), Y9
	VFMADD231PS Y8, Y9, Y0
	VBROADCASTSS (DI)(SI*1), Y9
	VFMADD231PS Y8, Y9, Y1
	VBROADCASTSS (DI)(SI*2), Y9
	VFMADD231PS Y8, Y9, Y2
	VBROADCASTSS (BX), Y9
	VFMADD231PS Y8, Y9, Y3
	VBROADCASTSS (DI)(SI*4), Y9
	VFMADD231PS Y8, Y9, Y4
	VBROADCASTSS (BX)(SI*2), Y9
	VFMADD231PS Y8, Y9, Y5
	VBROADCASTSS (BX)(R10*1), Y9
	VFMADD231PS Y8, Y9, Y6
	VBROADCASTSS (BX)(SI*4), Y9
	VFMADD231PS Y8, Y9, Y7
	ADDQ $32, DX
	ADDQ $4, DI
	ADDQ $4, BX
	DECQ CX
	JNZ  loop

	VMOVUPS Y0, (R8)
	VMOVUPS Y1, (R8)(R9*1)
	VMOVUPS Y2, (R8)(R9*2)
	VMOVUPS Y3, (R8)(R12*1)
	VMOVUPS Y4, (R13)
	VMOVUPS Y5, (R13)(R9*1)
	VMOVUPS Y6, (R13)(R9*2)
	VMOVUPS Y7, (R13)(R12*1)
	VZEROUPPER
	RET

// func gemmKernel1x8(a *float32, tile *float32, c *float32, kc int)
//
// Single-row edge kernel for the m%8 remainder rows:
//
//	C[0:8] += Σ_{p<kc} a[p] · tile[p*8 : p*8+8]
//
// A single accumulator keeps the per-row operation order identical to
// one row of gemmKernel8x8 (sequential fused FMA in ascending p), so a
// row produces the same bits whether a shard boundary routes it
// through the 8×8 tile or this kernel — ParallelGemmPacked stays
// bit-identical to serial GemmPacked on the AVX2 tier. The 4-way
// unroll only amortizes loop overhead; it does not re-associate.
TEXT ·gemmKernel1x8(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), DI
	MOVQ tile+8(FP), DX
	MOVQ c+16(FP), R8
	MOVQ kc+24(FP), CX

	VMOVUPS (R8), Y0

	MOVQ CX, AX
	SHRQ $2, AX
	JZ   tail

loop4:
	VBROADCASTSS (DI), Y9
	VFMADD231PS (DX), Y9, Y0
	VBROADCASTSS 4(DI), Y9
	VFMADD231PS 32(DX), Y9, Y0
	VBROADCASTSS 8(DI), Y9
	VFMADD231PS 64(DX), Y9, Y0
	VBROADCASTSS 12(DI), Y9
	VFMADD231PS 96(DX), Y9, Y0
	ADDQ $16, DI
	ADDQ $128, DX
	DECQ AX
	JNZ  loop4

tail:
	ANDQ $3, CX
	JZ   done

tail1:
	VBROADCASTSS (DI), Y9
	VFMADD231PS (DX), Y9, Y0
	ADDQ $4, DI
	ADDQ $32, DX
	DECQ CX
	JNZ  tail1

done:
	VMOVUPS Y0, (R8)
	VZEROUPPER
	RET
