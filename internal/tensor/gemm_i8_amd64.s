//go:build amd64

#include "textflag.h"

// AVX2 register-tiled int8 GEMM micro-kernels over the PackedBI8 tile
// layout (pack_i8.go): one 32-byte quad-row per k-group holds 8 output
// columns × 4 k codes, widened to i16 by VPMOVSXBW so VPMADDWD can
// consume uint8-range activation codes without the i16 saturation
// hazard of VPMADDUBSW (weights |w| ≤ 127, activations ≤ 255 →
// products ≤ 32385, pair sums ≤ 64770, well inside i16·i16→i32).
//
// All integer arithmetic is exact, so any accumulation shape gives the
// same bits as the pure-Go tier; the float epilogue below performs the
// identical operation sequence as gemmI8Tile (convert, scale product,
// multiply, bias add — no FMA), keeping the int8 tiers bit-identical.

// permI8idx reorders the VPHADDD lane interleave [c0 c1 c4 c5 | c2 c3
// c6 c7] back to ascending columns.
DATA permI8idx<>+0(SB)/4, $0
DATA permI8idx<>+4(SB)/4, $1
DATA permI8idx<>+8(SB)/4, $4
DATA permI8idx<>+12(SB)/4, $5
DATA permI8idx<>+16(SB)/4, $2
DATA permI8idx<>+20(SB)/4, $3
DATA permI8idx<>+24(SB)/4, $6
DATA permI8idx<>+28(SB)/4, $7
GLOBL permI8idx<>(SB), RODATA|NOPTR, $32

// func gemmI8Kern4x8(a *int16, astride int, tile *int8, y *float32, ldy int, kq int, sx *float32, zp *int32, sw *float32, colSum *int32, bias *float32)
//
// 4-row × 8-column micro-kernel: a full register tile of int32
// accumulators (two ymm per row — pairwise partial sums per column)
// over one packed column tile, then an in-register affine epilogue
// that writes the final float32 outputs:
//
//	y[r][j0+c] = float32(dot − zp[r]·colSum[c]) · (sx[r]·sw[c]) + bias[c]
//
// a points at the first activation row (stride astride i16 elements),
// y at Y[row0][j0] (stride ldy floats). sx/zp point at the 4 per-row
// quantization params, sw/colSum/bias at the 8 per-column params.
// Folding the epilogue into the kernel means no int32 scratch tile
// ever exists in memory.
TEXT ·gemmI8Kern4x8(SB), NOSPLIT, $0-88
	MOVQ a+0(FP), DI
	MOVQ astride+8(FP), SI
	MOVQ tile+16(FP), DX
	MOVQ kq+40(FP), CX

	SHLQ $1, SI          // astride in bytes
	LEAQ (SI)(SI*2), R10 // 3·astride bytes

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

loop:
	VPMOVSXBW (DX), Y8    // columns 0–3, 4 k codes each, widened s8→i16
	VPMOVSXBW 16(DX), Y9  // columns 4–7

	VPBROADCASTQ (DI), Y10 // row 0: 4 i16 activation codes → all quads
	VPMADDWD Y8, Y10, Y11
	VPADDD Y11, Y0, Y0
	VPMADDWD Y9, Y10, Y11
	VPADDD Y11, Y1, Y1

	VPBROADCASTQ (DI)(SI*1), Y10 // row 1
	VPMADDWD Y8, Y10, Y11
	VPADDD Y11, Y2, Y2
	VPMADDWD Y9, Y10, Y11
	VPADDD Y11, Y3, Y3

	VPBROADCASTQ (DI)(SI*2), Y10 // row 2
	VPMADDWD Y8, Y10, Y11
	VPADDD Y11, Y4, Y4
	VPMADDWD Y9, Y10, Y11
	VPADDD Y11, Y5, Y5

	VPBROADCASTQ (DI)(R10*1), Y10 // row 3
	VPMADDWD Y8, Y10, Y11
	VPADDD Y11, Y6, Y6
	VPMADDWD Y9, Y10, Y11
	VPADDD Y11, Y7, Y7

	ADDQ $32, DX
	ADDQ $8, DI
	DECQ CX
	JNZ  loop

	// Affine epilogue. Per-column vectors load once; per row: pairwise
	// horizontal add + lane fix → 8 exact dots, subtract zp·colSum,
	// convert, multiply by (sx·sw), add bias, store.
	MOVQ y+24(FP), R8
	MOVQ ldy+32(FP), R9
	SHLQ $2, R9          // ldy in bytes
	LEAQ (R9)(R9*2), R12 // 3·ldy bytes
	MOVQ sx+48(FP), R11
	MOVQ zp+56(FP), R13
	MOVQ sw+64(FP), R14
	MOVQ colSum+72(FP), BX
	MOVQ bias+80(FP), AX

	VMOVDQU (BX), Y12           // colSum[j0:j0+8]
	VMOVUPS (R14), Y13          // sw[j0:j0+8]
	VMOVUPS (AX), Y14           // bias[j0:j0+8]
	VMOVDQU permI8idx<>(SB), Y15

	// row 0
	VPHADDD      Y1, Y0, Y11 // [c0 c1 c4 c5 | c2 c3 c6 c7]
	VPERMD       Y11, Y15, Y11
	VPBROADCASTD (R13), Y10
	VPMULLD      Y12, Y10, Y10
	VPSUBD       Y10, Y11, Y11
	VCVTDQ2PS    Y11, Y11
	VBROADCASTSS (R11), Y10
	VMULPS       Y13, Y10, Y10
	VMULPS       Y10, Y11, Y11
	VADDPS       Y14, Y11, Y11
	VMOVUPS      Y11, (R8)

	// row 1
	VPHADDD      Y3, Y2, Y11
	VPERMD       Y11, Y15, Y11
	VPBROADCASTD 4(R13), Y10
	VPMULLD      Y12, Y10, Y10
	VPSUBD       Y10, Y11, Y11
	VCVTDQ2PS    Y11, Y11
	VBROADCASTSS 4(R11), Y10
	VMULPS       Y13, Y10, Y10
	VMULPS       Y10, Y11, Y11
	VADDPS       Y14, Y11, Y11
	VMOVUPS      Y11, (R8)(R9*1)

	// row 2
	VPHADDD      Y5, Y4, Y11
	VPERMD       Y11, Y15, Y11
	VPBROADCASTD 8(R13), Y10
	VPMULLD      Y12, Y10, Y10
	VPSUBD       Y10, Y11, Y11
	VCVTDQ2PS    Y11, Y11
	VBROADCASTSS 8(R11), Y10
	VMULPS       Y13, Y10, Y10
	VMULPS       Y10, Y11, Y11
	VADDPS       Y14, Y11, Y11
	VMOVUPS      Y11, (R8)(R9*2)

	// row 3
	VPHADDD      Y7, Y6, Y11
	VPERMD       Y11, Y15, Y11
	VPBROADCASTD 12(R13), Y10
	VPMULLD      Y12, Y10, Y10
	VPSUBD       Y10, Y11, Y11
	VCVTDQ2PS    Y11, Y11
	VBROADCASTSS 12(R11), Y10
	VMULPS       Y13, Y10, Y10
	VMULPS       Y10, Y11, Y11
	VADDPS       Y14, Y11, Y11
	VMOVUPS      Y11, (R8)(R12*1)

	VZEROUPPER
	RET

// func gemmI8Kern1x8(a *int16, tile *int8, y *float32, kq int, sx float32, zp int32, sw *float32, colSum *int32, bias *float32)
//
// Single-row edge kernel for the batch%4 remainder rows: one row of
// gemmI8Kern4x8 (same pairwise accumulator structure, same epilogue
// sequence). Integer dots are exact, so remainder rows match the 4×8
// tile bit-for-bit no matter where shard boundaries fall.
TEXT ·gemmI8Kern1x8(SB), NOSPLIT, $0-64
	MOVQ a+0(FP), DI
	MOVQ tile+8(FP), DX
	MOVQ kq+24(FP), CX

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1

loop:
	VPMOVSXBW    (DX), Y8
	VPMOVSXBW    16(DX), Y9
	VPBROADCASTQ (DI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y0, Y0
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y1, Y1
	ADDQ         $32, DX
	ADDQ         $8, DI
	DECQ         CX
	JNZ          loop

	MOVQ y+16(FP), R8
	MOVQ sw+40(FP), R14
	MOVQ colSum+48(FP), BX
	MOVQ bias+56(FP), AX

	VMOVDQU      (BX), Y12
	VMOVUPS      (R14), Y13
	VMOVUPS      (AX), Y14
	VMOVDQU      permI8idx<>(SB), Y15

	VPHADDD      Y1, Y0, Y11
	VPERMD       Y11, Y15, Y11
	MOVL         zp+36(FP), DX
	MOVQ         DX, X10
	VPBROADCASTD X10, Y10
	VPMULLD      Y12, Y10, Y10
	VPSUBD       Y10, Y11, Y11
	VCVTDQ2PS    Y11, Y11
	VBROADCASTSS sx+32(FP), Y10
	VMULPS       Y13, Y10, Y10
	VMULPS       Y10, Y11, Y11
	VADDPS       Y14, Y11, Y11
	VMOVUPS      Y11, (R8)

	VZEROUPPER
	RET

// func minMaxF32(s *float32, n int) (lo, hi float32)
//
// 8-lane min/max scan; n must be a positive multiple of 8. min/max are
// exact comparisons (no rounding), so the result matches the scalar
// loop bit-for-bit for finite inputs; only a −0.0 vs +0.0 pick can
// differ, which no downstream arithmetic observes.
TEXT ·minMaxF32(SB), NOSPLIT, $0-24
	MOVQ s+0(FP), DI
	MOVQ n+8(FP), CX

	VMOVUPS (DI), Y0 // running min
	VMOVUPS (DI), Y1 // running max
	ADDQ    $32, DI
	SUBQ    $8, CX
	JZ      reduce

loop:
	VMOVUPS (DI), Y2
	VMINPS  Y2, Y0, Y0
	VMAXPS  Y2, Y1, Y1
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     loop

reduce:
	VEXTRACTF128 $1, Y0, X2
	VMINPS       X2, X0, X0
	VPSHUFD      $0x0E, X0, X2
	VMINPS       X2, X0, X0
	VPSHUFD      $0x01, X0, X2
	VMINPS       X2, X0, X0
	MOVSS        X0, lo+16(FP)

	VEXTRACTF128 $1, Y1, X2
	VMAXPS       X2, X1, X1
	VPSHUFD      $0x0E, X1, X2
	VMAXPS       X2, X1, X1
	VPSHUFD      $0x01, X1, X2
	VMAXPS       X2, X1, X1
	MOVSS        X1, hi+20(FP)

	VZEROUPPER
	RET

// func quantizeI16(dst *int16, src *float32, n int, inv, zpf float32)
//
// Vector body of QuantizeRowI16; n must be a multiple of 16. Exactly
// the scalar sequence per element — f32 multiply, f32 add, floor
// (VROUNDPS $1, exact), truncating convert, integer clamp to [0, 255]
// — then a saturating i32→i16 pack (never saturates after the clamp)
// with VPERMQ fixing the lane interleave.
TEXT ·quantizeI16(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSS inv+24(FP), Y4
	VBROADCASTSS zpf+28(FP), Y5
	VPXOR        Y6, Y6, Y6  // 0
	VPCMPEQD     Y7, Y7, Y7
	VPSRLD       $24, Y7, Y7 // 255
	SHRQ         $4, CX

loop:
	VMULPS      (SI), Y4, Y0
	VADDPS      Y5, Y0, Y0
	VROUNDPS    $1, Y0, Y0
	VCVTTPS2DQ  Y0, Y0
	VMULPS      32(SI), Y4, Y1
	VADDPS      Y5, Y1, Y1
	VROUNDPS    $1, Y1, Y1
	VCVTTPS2DQ  Y1, Y1
	VPMAXSD     Y6, Y0, Y0
	VPMINSD     Y7, Y0, Y0
	VPMAXSD     Y6, Y1, Y1
	VPMINSD     Y7, Y1, Y1
	VPACKSSDW   Y1, Y0, Y0
	VPERMQ      $0xD8, Y0, Y0
	VMOVDQU     Y0, (DI)
	ADDQ        $64, SI
	ADDQ        $32, DI
	DECQ        CX
	JNZ         loop

	VZEROUPPER
	RET
