//go:build amd64

package tensor

// Assembly kernel declarations (gemm_amd64.s, simd_amd64.s). All are
// NOSPLIT leaf routines over caller-owned slices; //go:noescape keeps
// the slice backing arrays off the heap.

//go:noescape
func gemmKernel8x8(a *float32, lda int, tile *float32, c *float32, ldc int, kc int)

//go:noescape
func gemmKernel1x8(a *float32, tile *float32, c *float32, kc int)

//go:noescape
func addF32(dst, src *float32, n int)

//go:noescape
func dequantI8(dst *float32, codes *int8, n int, scale, offset float32)

//go:noescape
func dequantAccumI8(dst *float32, codes *int8, n int, scale, offset float32)

//go:noescape
func dotU8S8(x *uint8, w *int8, n int) int32

// gemmPackedRowsAVX2 is the assembly-tier twin of gemmPackedRowsGo:
// the same k-panel blocking and row ownership, with full 8-row ×
// 8-column register tiles dispatched to gemmKernel8x8, remainder rows
// to gemmKernel1x8, and the n%8 edge columns to the shared Go edge
// loop. Per-row accumulation proceeds panel by panel in ascending p on
// every path — gemmKernel1x8 deliberately mirrors one row of
// gemmKernel8x8 — so a row's bits do not depend on where shard
// boundaries fall, and the only numeric deviation from the Go tier is
// FMA fusion, bounded by the FloatsClose contract.
func gemmPackedRowsAVX2(ad []float32, pb *PackedB, cd []float32, lo, hi, k, n int) {
	for p0 := 0; p0 < k; p0 += blockSize {
		pMax := min(p0+blockSize, k)
		kc := pMax - p0
		panel := pb.data[p0*n : p0*n+kc*n]
		nFull := n &^ (nr - 1)
		i := lo
		for ; i+8 <= hi; i += 8 {
			for j0 := 0; j0 < nFull; j0 += nr {
				gemmKernel8x8(&ad[i*k+p0], k, &panel[kc*j0], &cd[i*n+j0], n, kc)
			}
			if nFull < n {
				for r := i; r < i+8; r++ {
					gemmPackedEdge(ad[r*k+p0:r*k+pMax], panel, cd[r*n:(r+1)*n], kc, nFull, n)
				}
			}
		}
		for ; i < hi; i++ {
			for j0 := 0; j0 < nFull; j0 += nr {
				gemmKernel1x8(&ad[i*k+p0], &panel[kc*j0], &cd[i*n+j0], kc)
			}
			if nFull < n {
				gemmPackedEdge(ad[i*k+p0:i*k+pMax], panel, cd[i*n:(i+1)*n], kc, nFull, n)
			}
		}
	}
}
