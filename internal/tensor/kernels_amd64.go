//go:build amd64

package tensor

// Assembly kernel declarations (gemm_amd64.s, simd_amd64.s). All are
// NOSPLIT leaf routines over caller-owned slices; //go:noescape keeps
// the slice backing arrays off the heap.

//go:noescape
func gemmKernel8x8(a *float32, lda int, tile *float32, c *float32, ldc int, kc int)

//go:noescape
func gemmKernel1x8(a *float32, tile *float32, c *float32, kc int)

//go:noescape
func addF32(dst, src *float32, n int)

//go:noescape
func dequantI8(dst *float32, codes *int8, n int, scale, offset float32)

//go:noescape
func dequantAccumI8(dst *float32, codes *int8, n int, scale, offset float32)

//go:noescape
func dotU8S8(x *uint8, w *int8, n int) int32

//go:noescape
func gemmI8Kern4x8(a *int16, astride int, tile *int8, y *float32, ldy int, kq int, sx *float32, zp *int32, sw *float32, colSum *int32, bias *float32)

//go:noescape
func gemmI8Kern1x8(a *int16, tile *int8, y *float32, kq int, sx float32, zp int32, sw *float32, colSum *int32, bias *float32)

//go:noescape
func minMaxF32(s *float32, n int) (lo, hi float32)

//go:noescape
func quantizeI16(dst *int16, src *float32, n int, inv, zpf float32)

// gemmPackedRowsAVX2 is the assembly-tier twin of gemmPackedRowsGo:
// the same k-panel blocking and row ownership, with full 8-row ×
// 8-column register tiles dispatched to gemmKernel8x8, remainder rows
// to gemmKernel1x8, and the n%8 edge columns to the shared Go edge
// loop. Per-row accumulation proceeds panel by panel in ascending p on
// every path — gemmKernel1x8 deliberately mirrors one row of
// gemmKernel8x8 — so a row's bits do not depend on where shard
// boundaries fall, and the only numeric deviation from the Go tier is
// FMA fusion, bounded by the FloatsClose contract.
func gemmPackedRowsAVX2(ad []float32, pb *PackedB, cd []float32, lo, hi, pLo, pHi, k, n int) {
	for p0 := pLo; p0 < pHi; p0 += blockSize {
		pMax := min(p0+blockSize, pHi)
		kc := pMax - p0
		panel := pb.data[p0*n : p0*n+kc*n]
		nFull := n &^ (nr - 1)
		i := lo
		for ; i+8 <= hi; i += 8 {
			for j0 := 0; j0 < nFull; j0 += nr {
				gemmKernel8x8(&ad[i*k+p0], k, &panel[kc*j0], &cd[i*n+j0], n, kc)
			}
			if nFull < n {
				for r := i; r < i+8; r++ {
					gemmPackedEdge(ad[r*k+p0:r*k+pMax], panel, cd[r*n:(r+1)*n], kc, nFull, n)
				}
			}
		}
		for ; i < hi; i++ {
			for j0 := 0; j0 < nFull; j0 += nr {
				gemmKernel1x8(&ad[i*k+p0], &panel[kc*j0], &cd[i*n+j0], kc)
			}
			if nFull < n {
				gemmPackedEdge(ad[i*k+p0:i*k+pMax], panel, cd[i*n:(i+1)*n], kc, nFull, n)
			}
		}
	}
}

// gemmI8RowsAVX2 is the assembly-tier twin of gemmI8RowsGo: the same
// (mc=4, nc=L2) blocking nest, with full column tiles dispatched to
// the 4×8 micro-kernel, remainder rows to the 1×8 kernel, and the
// zero-padded tail tile (n%8) to the shared Go micro-kernel. Integer
// dots are exact and the asm epilogue replays gemmI8Tile's float
// sequence, so all paths agree bit-for-bit with the Go tier.
func gemmI8RowsAVX2(x []int16, sx []float32, zp []int32, pb *PackedBI8, bias []float32, y []float32, lo, hi int) {
	n, kq, ks := pb.N, pb.kq, pb.KStride()
	tiles := pb.Tiles()
	full := n / nrI8
	tileLen := kq * quadK * nrI8
	group := i8TileGroup(pb)
	for t0 := 0; t0 < tiles; t0 += group {
		tMax := min(t0+group, tiles)
		r := lo
		for ; r+mrI8 <= hi; r += mrI8 {
			for t := t0; t < tMax; t++ {
				j0 := t * nrI8
				if t < full {
					biasp := &zeroBiasI8[0]
					if bias != nil {
						biasp = &bias[j0]
					}
					gemmI8Kern4x8(&x[r*ks], ks, &pb.codes[t*tileLen], &y[r*n+j0], n, kq,
						&sx[r], &zp[r], &pb.Scale[j0], &pb.ColSum[j0], biasp)
				} else {
					for rr := r; rr < r+mrI8; rr++ {
						gemmI8Tile(x[rr*ks:(rr+1)*ks], pb.codes[t*tileLen:], y[rr*n:(rr+1)*n],
							kq, j0, n-j0, sx[rr], zp[rr], pb, bias)
					}
				}
			}
		}
		for ; r < hi; r++ {
			for t := t0; t < tMax; t++ {
				j0 := t * nrI8
				if t < full {
					biasp := &zeroBiasI8[0]
					if bias != nil {
						biasp = &bias[j0]
					}
					gemmI8Kern1x8(&x[r*ks], &pb.codes[t*tileLen], &y[r*n+j0], kq,
						sx[r], zp[r], &pb.Scale[j0], &pb.ColSum[j0], biasp)
				} else {
					gemmI8Tile(x[r*ks:(r+1)*ks], pb.codes[t*tileLen:], y[r*n:(r+1)*n],
						kq, j0, n-j0, sx[r], zp[r], pb, bias)
				}
			}
		}
	}
}
