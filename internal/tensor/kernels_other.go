//go:build !amd64

package tensor

// Non-amd64 stubs. useAVX2 is always false off amd64 (detectAVX2FMA
// returns false and SetKernel refuses the tier), so none of these can
// be reached; they exist only to satisfy the dispatch call sites.

func gemmPackedRowsAVX2(ad []float32, pb *PackedB, cd []float32, lo, hi, pLo, pHi, k, n int) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func addF32(dst, src *float32, n int) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func dequantI8(dst *float32, codes *int8, n int, scale, offset float32) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func dequantAccumI8(dst *float32, codes *int8, n int, scale, offset float32) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func dotU8S8(x *uint8, w *int8, n int) int32 {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func gemmI8RowsAVX2(x []int16, sx []float32, zp []int32, pb *PackedBI8, bias []float32, y []float32, lo, hi int) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func minMaxF32(s *float32, n int) (lo, hi float32) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func quantizeI16(dst *int16, src *float32, n int, inv, zpf float32) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}
