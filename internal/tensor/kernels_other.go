//go:build !amd64

package tensor

// Non-amd64 stubs. useAVX2 is always false off amd64 (detectAVX2FMA
// returns false and SetKernel refuses the tier), so none of these can
// be reached; they exist only to satisfy the dispatch call sites.

func gemmPackedRowsAVX2(ad []float32, pb *PackedB, cd []float32, lo, hi, k, n int) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func addF32(dst, src *float32, n int) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func dequantI8(dst *float32, codes *int8, n int, scale, offset float32) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func dequantAccumI8(dst *float32, codes *int8, n int, scale, offset float32) {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}

func dotU8S8(x *uint8, w *int8, n int) int32 {
	panic("tensor: AVX2 kernel tier selected on a non-amd64 build")
}
