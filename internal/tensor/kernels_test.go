package tensor

import (
	"math/rand"
	"testing"
)

// Equivalence policy (see cpu.go): fp32 GEMM comparisons between the
// AVX2/FMA tier and the Go reference use FloatsClose — fused rounding
// differs legitimately — while AddF32, DequantI8, and DotU8S8 must be
// bit-identical across tiers. The pure-Go tier is bit-exact by
// definition (it IS the reference).

// The tolerances are the package contract (see GemmTol's rationale);
// these wrappers keep the assert call sites short.
func gemmRtolOf(k int) float64 { rtol, _ := GemmTol(k); return rtol }
func gemmAtol(k int) float64   { _, atol := GemmTol(k); return atol }

func requireAVX2(t testing.TB) {
	t.Helper()
	if !KernelSupported(KernelAVX2) {
		t.Skip("no AVX2/FMA on this machine; asm tier untestable")
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// runBothGemmTiers packs B and runs the Go and AVX2 packed kernels
// over rows [lo, hi), returning both C buffers.
func runBothGemmTiers(rng *rand.Rand, m, k, n, lo, hi int) (goC, asmC []float32) {
	a := FromSlice(randSlice(rng, m*k), m, k)
	b := FromSlice(randSlice(rng, k*n), k, n)
	pb := PackB(b)
	goC = randSlice(rng, m*n) // non-zero C: accumulation must match too
	asmC = make([]float32, m*n)
	copy(asmC, goC)
	gemmPackedRowsGo(a.data, pb, goC, lo, hi, 0, k, k, n)
	gemmPackedRowsAVX2(a.data, pb, asmC, lo, hi, 0, k, k, n)
	return goC, asmC
}

func TestGemmPackedTierEquivalence(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{8, 8, 8},
		{16, 64, 32},
		{7, 13, 9},    // no full 8-row tile, ragged columns
		{9, 65, 17},   // remainder rows + k crossing a panel boundary
		{33, 129, 40}, // multiple panels, 8|n
		{64, 512, 512},
		{12, 100, 7}, // n < nr: pure edge-column path
	}
	for _, s := range shapes {
		goC, asmC := runBothGemmTiers(rng, s.m, s.k, s.n, 0, s.m)
		if !FloatsClose(asmC, goC, gemmRtolOf(s.k), gemmAtol(s.k)) {
			t.Errorf("m=%d k=%d n=%d: AVX2 GEMM deviates from Go reference beyond rtol", s.m, s.k, s.n)
		}
	}
}

// TestGemmPackedTierRowRange exercises partial row ranges — the shard
// boundaries ParallelGemmPacked hands to workers never start at a
// multiple of 8 in general.
func TestGemmPackedTierRowRange(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(12))
	const m, k, n = 21, 33, 24
	for _, r := range []struct{ lo, hi int }{{0, 21}, {3, 11}, {5, 6}, {13, 21}} {
		goC, asmC := runBothGemmTiers(rng, m, k, n, r.lo, r.hi)
		if !FloatsClose(asmC, goC, gemmRtolOf(k), gemmAtol(k)) {
			t.Errorf("rows [%d,%d): AVX2 GEMM deviates from Go reference", r.lo, r.hi)
		}
	}
}

// TestGemmPackedDispatch: the public entry points honor SetKernel and
// the go tier stays bit-identical to the unpacked reference Gemm.
func TestGemmPackedDispatch(t *testing.T) {
	prev := KernelTier()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	rng := rand.New(rand.NewSource(13))
	const m, k, n = 19, 70, 43
	a := FromSlice(randSlice(rng, m*k), m, k)
	b := FromSlice(randSlice(rng, k*n), k, n)
	pb := PackB(b)

	ref := New(m, n)
	Gemm(a, b, ref)

	if err := SetKernel(KernelGo); err != nil {
		t.Fatal(err)
	}
	goC := New(m, n)
	GemmPacked(a, pb, goC)
	for i := range ref.data {
		if ref.data[i] != goC.data[i] {
			t.Fatalf("go-tier GemmPacked not bit-identical to Gemm at %d", i)
		}
	}

	if KernelSupported(KernelAVX2) {
		if err := SetKernel(KernelAVX2); err != nil {
			t.Fatal(err)
		}
		asmC := New(m, n)
		GemmPacked(a, pb, asmC)
		if !TensorsClose(asmC, ref, gemmRtolOf(k), gemmAtol(k)) {
			t.Fatal("avx2-tier GemmPacked deviates from Gemm beyond rtol")
		}
		par := New(m, n)
		ParallelGemmPacked(a, pb, par, 4)
		for i := range par.data {
			if par.data[i] != asmC.data[i] {
				t.Fatalf("parallel avx2 GemmPacked differs from serial at %d (row partition must not change per-row order)", i)
			}
		}
	}
}

func TestSetKernelErrors(t *testing.T) {
	prev := KernelTier()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetKernel("sse9"); err == nil {
		t.Fatal("SetKernel accepted an unknown tier")
	}
	if !KernelSupported(KernelGo) {
		t.Fatal("go tier must always be supported")
	}
	if err := SetKernel(KernelGo); err != nil {
		t.Fatal(err)
	}
	if KernelTier() != KernelGo {
		t.Fatalf("tier = %q after SetKernel(go)", KernelTier())
	}
	if !KernelSupported(KernelAVX2) {
		if err := SetKernel(KernelAVX2); err == nil {
			t.Fatal("SetKernel(avx2) must fail without hardware support")
		}
	}
}

func TestAddF32BitIdentical(t *testing.T) {
	requireAVX2(t)
	prev := KernelTier()
	defer func() { _ = SetKernel(prev) }()
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 7, 8, 9, 31, 32, 33, 64, 100, 129} {
		src := randSlice(rng, n)
		dstGo := randSlice(rng, n)
		dstAsm := make([]float32, n)
		copy(dstAsm, dstGo)
		if err := SetKernel(KernelGo); err != nil {
			t.Fatal(err)
		}
		AddF32(dstGo, src)
		if err := SetKernel(KernelAVX2); err != nil {
			t.Fatal(err)
		}
		AddF32(dstAsm, src)
		for i := range dstGo {
			if dstGo[i] != dstAsm[i] {
				t.Fatalf("n=%d: AddF32 tiers differ at %d: %v vs %v", n, i, dstGo[i], dstAsm[i])
			}
		}
	}
}

func TestDequantI8BitIdentical(t *testing.T) {
	requireAVX2(t)
	prev := KernelTier()
	defer func() { _ = SetKernel(prev) }()
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{1, 7, 8, 9, 32, 33, 64, 127} {
		codes := make([]int8, n)
		for i := range codes {
			codes[i] = int8(rng.Intn(256) - 128)
		}
		scale := float32(rng.Float64() * 0.01)
		offset := float32(rng.NormFloat64())
		dstGo := make([]float32, n)
		dstAsm := make([]float32, n)
		if err := SetKernel(KernelGo); err != nil {
			t.Fatal(err)
		}
		DequantI8(dstGo, codes, scale, offset)
		if err := SetKernel(KernelAVX2); err != nil {
			t.Fatal(err)
		}
		DequantI8(dstAsm, codes, scale, offset)
		for i := range dstGo {
			if dstGo[i] != dstAsm[i] {
				t.Fatalf("n=%d: DequantI8 tiers differ at %d: %v vs %v", n, i, dstGo[i], dstAsm[i])
			}
		}
	}
}

func TestDequantAccumI8BitIdentical(t *testing.T) {
	requireAVX2(t)
	prev := KernelTier()
	defer func() { _ = SetKernel(prev) }()
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{1, 7, 8, 9, 32, 33, 64, 127} {
		codes := make([]int8, n)
		for i := range codes {
			codes[i] = int8(rng.Intn(256) - 128)
		}
		scale := float32(rng.Float64() * 0.01)
		offset := float32(rng.NormFloat64())
		dstGo := randSlice(rng, n) // non-zero: the accumulate must match
		dstAsm := make([]float32, n)
		staged := make([]float32, n)
		copy(dstAsm, dstGo)
		staged2 := append([]float32(nil), dstGo...)
		if err := SetKernel(KernelGo); err != nil {
			t.Fatal(err)
		}
		DequantAccumI8(dstGo, codes, scale, offset)
		// Fused must equal dequantize-then-AddF32 on the Go tier too.
		DequantI8(staged, codes, scale, offset)
		AddF32(staged2, staged)
		if err := SetKernel(KernelAVX2); err != nil {
			t.Fatal(err)
		}
		DequantAccumI8(dstAsm, codes, scale, offset)
		for i := range dstGo {
			if dstGo[i] != dstAsm[i] {
				t.Fatalf("n=%d: DequantAccumI8 tiers differ at %d: %v vs %v", n, i, dstGo[i], dstAsm[i])
			}
			if dstGo[i] != staged2[i] {
				t.Fatalf("n=%d: fused accumulate differs from dequant-then-add at %d", n, i)
			}
		}
	}
}

func TestDotU8S8Exact(t *testing.T) {
	prev := KernelTier()
	defer func() { _ = SetKernel(prev) }()
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 15, 16, 17, 32, 64, 100, 512, 513} {
		x := make([]uint8, n)
		w := make([]int8, n)
		var want int32
		for i := range x {
			x[i] = uint8(rng.Intn(256))
			w[i] = int8(rng.Intn(256) - 128)
			want += int32(x[i]) * int32(w[i])
		}
		for _, tier := range []string{KernelGo, KernelAVX2} {
			if !KernelSupported(tier) {
				continue
			}
			if err := SetKernel(tier); err != nil {
				t.Fatal(err)
			}
			if got := DotU8S8(x, w); got != want {
				t.Fatalf("n=%d tier=%s: DotU8S8 = %d, want %d", n, tier, got, want)
			}
		}
	}
	// Worst-case magnitudes: saturation in a VPMADDUBSW-style kernel
	// would corrupt exactly this input; the widening kernel must not.
	x := make([]uint8, 64)
	w := make([]int8, 64)
	var want int32
	for i := range x {
		x[i] = 255
		w[i] = -128
		want += 255 * -128
	}
	for _, tier := range []string{KernelGo, KernelAVX2} {
		if !KernelSupported(tier) {
			continue
		}
		if err := SetKernel(tier); err != nil {
			t.Fatal(err)
		}
		if got := DotU8S8(x, w); got != want {
			t.Fatalf("tier=%s: saturation-prone DotU8S8 = %d, want %d", tier, got, want)
		}
	}
}

func TestFloatsClose(t *testing.T) {
	if !FloatsClose([]float32{1, 2}, []float32{1, 2}, 0, 0) {
		t.Fatal("identical slices not close")
	}
	if FloatsClose([]float32{1}, []float32{1, 2}, 1, 1) {
		t.Fatal("length mismatch reported close")
	}
	if !FloatsClose([]float32{1.00001}, []float32{1}, 1e-4, 0) {
		t.Fatal("within rtol not close")
	}
	if FloatsClose([]float32{1.1}, []float32{1}, 1e-4, 0) {
		t.Fatal("outside rtol reported close")
	}
	if !FloatsClose([]float32{1e-7}, []float32{0}, 0, 1e-6) {
		t.Fatal("within atol not close")
	}
}

// FuzzGemmKernelEquiv randomizes shapes (including ragged edges and
// k-panel crossings) and row ranges, asserting the AVX2 GEMM kernel
// stays within the relative-epsilon contract of the Go reference.
func FuzzGemmKernelEquiv(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint8(0), int64(1))
	f.Add(uint8(7), uint8(13), uint8(9), uint8(2), int64(2))
	f.Add(uint8(33), uint8(129), uint8(40), uint8(9), int64(3))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), int64(4))
	f.Add(uint8(17), uint8(64), uint8(7), uint8(16), int64(5))
	f.Fuzz(func(t *testing.T, mr, kr, nr8, lor uint8, seed int64) {
		if !KernelSupported(KernelAVX2) {
			t.Skip("no AVX2/FMA")
		}
		m := int(mr)%40 + 1
		k := int(kr)%150 + 1 // crosses the 64-row panel boundary
		n := int(nr8)%50 + 1
		lo := int(lor) % m
		rng := rand.New(rand.NewSource(seed))
		goC, asmC := runBothGemmTiers(rng, m, k, n, lo, m)
		if !FloatsClose(asmC, goC, gemmRtolOf(k), gemmAtol(k)) {
			t.Errorf("m=%d k=%d n=%d lo=%d seed=%d: AVX2 GEMM beyond rtol of Go reference", m, k, n, lo, seed)
		}
	})
}
