package tensor

import (
	"fmt"
	"runtime"
)

// nr is the register-tile width of the packed GEMM micro-kernel:
// eight output columns are accumulated per inner-loop step. Measured
// on amd64 against 4- and 16-wide variants, 8 is the sweet spot: the
// compiler keeps all eight accumulators in registers, and the
// array-pointer loads below eliminate the inner-loop bounds checks
// (16-wide spills and runs ~3× slower).
const nr = 8

// minParallelMAdds is the GEMM work (m·k·n multiply-adds) below which
// goroutine fan-out costs more than it saves and the kernels run
// serially.
const minParallelMAdds = 1 << 17

// PackedB holds a k×n B operand reorganized into the layout the packed
// GEMM micro-kernel consumes: panels of blockSize rows, each panel
// stored as column tiles nr wide, so the inner loop reads B with unit
// stride regardless of n. FC layers pack their weight matrix once and
// reuse it for every forward pass — the same amortization FBGEMM's
// PackedGemmMatrixB performs for Facebook's production FC kernels.
type PackedB struct {
	K, N int
	data []float32
}

// PackB packs a rank-2 tensor for use with GemmPacked.
func PackB(b *Tensor) *PackedB {
	if b.Rank() != 2 {
		panic("tensor: PackB requires a rank-2 tensor")
	}
	k, n := b.shape[0], b.shape[1]
	pb := &PackedB{K: k, N: n, data: make([]float32, k*n)}
	for p0 := 0; p0 < k; p0 += blockSize {
		pMax := min(p0+blockSize, k)
		kc := pMax - p0
		panel := pb.data[p0*n : p0*n+kc*n]
		for j0 := 0; j0 < n; j0 += nr {
			w := min(nr, n-j0)
			tile := panel[kc*j0 : kc*j0+kc*w]
			t := 0
			for p := p0; p < pMax; p++ {
				copy(tile[t:t+w], b.data[p*n+j0:p*n+j0+w])
				t += w
			}
		}
	}
	return pb
}

func checkGemmPacked(a *Tensor, pb *PackedB, c *Tensor) (m, k, n int) {
	if a.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: GemmPacked requires rank-2 A and C")
	}
	m, k = a.shape[0], a.shape[1]
	if k != pb.K {
		panic(fmt.Sprintf("tensor: GemmPacked inner dimensions %d and %d differ", k, pb.K))
	}
	n = pb.N
	if c.shape[0] != m || c.shape[1] != n {
		panic(fmt.Sprintf("tensor: GemmPacked output shape %v, want [%d %d]", c.shape, m, n))
	}
	return m, k, n
}

// GemmPacked computes C = A·B + C against a pre-packed B. On the
// pure-Go kernel tier the accumulation order per output element is
// identical to Gemm (p ascending, with the same skip of zero A
// entries), so results are bit-identical to the serial reference
// kernel; the AVX2/FMA tier fuses each multiply-add and is equivalent
// within the FloatsClose epsilon contract (see cpu.go).
func GemmPacked(a *Tensor, pb *PackedB, c *Tensor) {
	m, k, n := checkGemmPacked(a, pb, c)
	gemmPackedRows(a.data, pb, c.data, 0, m, k, n)
}

// gemmPackedRows runs the packed kernel over output rows [lo, hi),
// dispatching to the tier selected at init (or via SetKernel).
func gemmPackedRows(ad []float32, pb *PackedB, cd []float32, lo, hi, k, n int) {
	gemmPackedRowsBlock(ad, pb, cd, lo, hi, 0, k, k, n)
}

// gemmPackedRowsBlock is gemmPackedRows restricted to the k-panel
// range [pLo, pHi) — the kc dimension of the cache blocking. pLo/pHi
// must be blockSize-aligned (pHi may be k). Accumulating a row block
// by block in ascending p is the same per-row operation order as one
// full-range pass, so blocked and unblocked calls are bit-identical on
// every tier.
func gemmPackedRowsBlock(ad []float32, pb *PackedB, cd []float32, lo, hi, pLo, pHi, k, n int) {
	if useAVX2 {
		gemmPackedRowsAVX2(ad, pb, cd, lo, hi, pLo, pHi, k, n)
		return
	}
	gemmPackedRowsGo(ad, pb, cd, lo, hi, pLo, pHi, k, n)
}

// gemmPackedRowsGo is the portable reference kernel: 8 scalar
// accumulators per column tile, bit-identical to Gemm.
func gemmPackedRowsGo(ad []float32, pb *PackedB, cd []float32, lo, hi, pLo, pHi, k, n int) {
	for p0 := pLo; p0 < pHi; p0 += blockSize {
		pMax := min(p0+blockSize, pHi)
		kc := pMax - p0
		panel := pb.data[p0*n : p0*n+kc*n]
		for i := lo; i < hi; i++ {
			arow := ad[i*k+p0 : i*k+pMax]
			crow := cd[i*n : (i+1)*n]
			j0 := 0
			for ; j0+nr <= n; j0 += nr {
				// Array-pointer conversions pin the tile and C accesses to
				// compile-time-known bounds, so the hot loop runs with no
				// bounds checks; the nr scalar accumulators stay in
				// registers across the whole k-panel.
				tile := panel[kc*j0 : kc*(j0+nr)]
				cs := (*[nr]float32)(crow[j0 : j0+nr])
				c0, c1, c2, c3 := cs[0], cs[1], cs[2], cs[3]
				c4, c5, c6, c7 := cs[4], cs[5], cs[6], cs[7]
				for _, aip := range arow {
					bt := (*[nr]float32)(tile)
					if aip != 0 {
						c0 += aip * bt[0]
						c1 += aip * bt[1]
						c2 += aip * bt[2]
						c3 += aip * bt[3]
						c4 += aip * bt[4]
						c5 += aip * bt[5]
						c6 += aip * bt[6]
						c7 += aip * bt[7]
					}
					tile = tile[nr:]
				}
				cs[0], cs[1], cs[2], cs[3] = c0, c1, c2, c3
				cs[4], cs[5], cs[6], cs[7] = c4, c5, c6, c7
			}
			if j0 < n {
				gemmPackedEdge(arow, panel, crow, kc, j0, n)
			}
		}
	}
}

// gemmPackedEdge handles the final n%nr output columns of one row
// within one k-panel: arow is A[i][p0:pMax], panel the packed k-panel,
// crow the full output row. Shared by both kernel tiers (the AVX2
// driver falls back here for edge columns), and bit-identical to the
// original in-line loop.
func gemmPackedEdge(arow, panel, crow []float32, kc, j0, n int) {
	w := n - j0
	tile := panel[kc*j0 : kc*j0+kc*w]
	t := 0
	for _, aip := range arow {
		if aip != 0 {
			for jj := 0; jj < w; jj++ {
				crow[j0+jj] += aip * tile[t+jj]
			}
		}
		t += w
	}
}

// l2PanelBytes bounds the packed-B bytes one parallel kc block
// streams: the block's panels stay L2-resident while every row shard
// sweeps them, instead of each worker streaming the whole of B from
// memory per pass (which left the row-sharded kernel memory-bound at
// large batch).
const l2PanelBytes = 1 << 19

// parallelKC returns the kc block height (in B rows) for the blocked
// parallel GEMM: the largest blockSize multiple whose n-wide panel
// slab fits the l2PanelBytes budget, never below one panel.
func parallelKC(n int) int {
	rows := l2PanelBytes / (4 * n)
	rows &^= blockSize - 1
	if rows < blockSize {
		rows = blockSize
	}
	return rows
}

// ParallelGemmPacked computes C = A·B + C against a pre-packed B,
// splitting A's rows across workers goroutines (0 = GOMAXPROCS).
// Small problems (under minParallelMAdds multiply-adds) run serially.
//
// The parallel pass is cache-blocked: B's k-panels are walked in kc
// blocks of ≤ l2PanelBytes (an (mc, kc) loop nest with mc the row
// shard), and all workers sweep the same L2-resident block before the
// next one is touched, so B traffic from memory is paid once per pass
// rather than once per worker. ParallelFor's deterministic partition
// gives each output row to the same worker in every block, and the
// per-row accumulation order (panels ascending in p) is unchanged, so
// results match the serial GemmPacked exactly on every tier
// (bit-identical to Gemm on the pure-Go tier). Fan-out goes through
// ParallelFor, so a panic in any shard surfaces on the calling
// goroutine instead of killing the process.
func ParallelGemmPacked(a *Tensor, pb *PackedB, c *Tensor, workers int) {
	m, k, n := checkGemmPacked(a, pb, c)
	workers = clampWorkers(workers, m, k, n)
	if workers <= 1 {
		gemmPackedRows(a.data, pb, c.data, 0, m, k, n)
		return
	}
	kc := parallelKC(n)
	for p0 := 0; p0 < k; p0 += kc {
		pHi := min(p0+kc, k)
		ParallelFor(m, workers, func(lo, hi int) {
			gemmPackedRowsBlock(a.data, pb, c.data, lo, hi, p0, pHi, k, n)
		})
	}
}

// clampWorkers resolves a worker count for an m-row, m×k×n-work
// kernel: 0 means GOMAXPROCS, never more workers than rows, and
// problems too small to amortize goroutine fan-out get 1.
func clampWorkers(workers, m, k, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if m*k*n < minParallelMAdds {
		return 1
	}
	return workers
}
