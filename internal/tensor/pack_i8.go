package tensor

import (
	"fmt"
	"math"
)

// Register-tiled int8 GEMM over a packed weight layout — the
// FBGEMM-style kernel tier that makes int8 compute *faster* than the
// fp32 assembly GEMM instead of merely smaller (Park et al., "Deep
// Learning Inference in Facebook Data Centers"). The fp32 packed GEMM
// (pack.go) amortizes weight reorganization across requests; this file
// does the same for the quantized path, replacing the one-dot-per-
// output-element VPMADDWD loop with an mrI8×nrI8 int32 accumulator
// tile per pass.
//
// Numerics: every product and sum on the integer side is exact, and
// the float epilogue applies one fixed operation sequence per output
// element, so results are bit-identical across kernel tiers, row
// partitions, and micro-tile shapes — integer addition is associative,
// unlike float accumulation, which is why the int8 tiers need no
// FloatsClose epsilon.

const (
	// nrI8 is the column-tile width: 8 output channels per micro-kernel
	// pass, matching one ymm of int32 accumulators.
	nrI8 = 8
	// mrI8 is the row-tile height of the AVX2 micro-kernel: 4 rows ×
	// (2 accumulators each) fills 8 of the 16 ymm registers, leaving
	// room for the two widened B tile halves and scratch.
	mrI8 = 4
	// quadK is the k-grouping of the packed layout: VPMADDWD consumes
	// pairs of i16 products and the widened broadcast covers 4
	// activations, so B codes are stored 4 k-values at a time.
	quadK = 4
	// i8TileGroupBytes bounds the packed-B bytes a single column-tile
	// group streams per row block — the nc dimension of the (mc, nc)
	// cache blocking. One group of tiles stays L2-resident while the
	// row loop sweeps it; RM-scale layers fit a single group.
	i8TileGroupBytes = 1 << 19
)

// PackedBI8 holds an In×Out int8 weight matrix in the layout the
// register-tiled int8 kernel consumes, together with the per-output-
// channel quantization metadata the epilogue needs:
//
//   - codes: column panels nrI8 wide; within a panel, k runs in groups
//     of quadK — byte [t*kq*32 + q*32 + c*4 + i] is the weight code for
//     output channel t*8+c at depth q*4+i. Both k and n are zero-padded
//     to their tile multiples (zero codes contribute exactly 0 to every
//     dot, so padding never changes a result).
//   - Scale[j]: fp32 weight ≈ code · Scale[j] for output channel j.
//   - ColSum[j]: Σᵢ codes[i][j], the zero-point correction row — the
//     activations' asymmetric zero point multiplies this exactly once
//     per output element.
type PackedBI8 struct {
	K, N int
	// kq is the padded quad count: ceil(K/4). Activation rows handed to
	// GemmI8 use a row stride of KStride() = kq*4 i16 codes; the pad
	// lanes multiply zero weight codes, so their contents are free.
	kq     int
	codes  []int8
	Scale  []float32
	ColSum []int32
}

// KStride returns the activation row stride (in int16 code elements)
// the packed layout expects: K rounded up to a multiple of quadK. Pad
// elements beyond K may hold anything — they meet zero weight codes.
func (pb *PackedBI8) KStride() int { return pb.kq * quadK }

// Tiles returns the number of nrI8-wide column tiles (including the
// zero-padded tail tile, if any).
func (pb *PackedBI8) Tiles() int { return (pb.N + nrI8 - 1) / nrI8 }

// PackBI8 packs column-major int8 weight codes (channel j occupies
// codes[j*k:(j+1)*k]) into the register-tile layout. scale and colSum
// are the per-output-channel quantization scale and exact code sums;
// both must have length n. The slices are copied, so callers may reuse
// their buffers.
func PackBI8(codes []int8, k, n int, scale []float32, colSum []int32) *PackedBI8 {
	if k < 0 || n <= 0 {
		panic(fmt.Sprintf("tensor: PackBI8 shape %dx%d", k, n))
	}
	if len(codes) < k*n {
		panic(fmt.Sprintf("tensor: PackBI8 codes length %d, want %d", len(codes), k*n))
	}
	if len(scale) != n || len(colSum) != n {
		panic(fmt.Sprintf("tensor: PackBI8 metadata lengths %d/%d, want %d", len(scale), len(colSum), n))
	}
	kq := (k + quadK - 1) / quadK
	if kq == 0 {
		// Keep at least one (all-zero) quad so the asm kernels' k loop
		// is always entered a well-defined number of times; KStride is
		// therefore ≥ 4 even for a degenerate K=0 pack.
		kq = 1
	}
	tiles := (n + nrI8 - 1) / nrI8
	pb := &PackedBI8{
		K: k, N: n, kq: kq,
		// make() zero-fills, which is load-bearing: pad lanes (k beyond
		// K, columns beyond N) must hold zero codes.
		codes:  make([]int8, tiles*kq*quadK*nrI8),
		Scale:  append([]float32(nil), scale...),
		ColSum: append([]int32(nil), colSum...),
	}
	for j := 0; j < n; j++ {
		col := codes[j*k : (j+1)*k]
		t, c := j/nrI8, j%nrI8
		tile := pb.codes[t*kq*quadK*nrI8:]
		for i, code := range col {
			q, kk := i/quadK, i%quadK
			tile[q*quadK*nrI8+c*quadK+kk] = code
		}
	}
	return pb
}

// zeroBiasI8 is the shared all-zero bias row the drivers substitute
// when the caller passes a nil bias: the epilogue always performs the
// bias add (adding +0.0 also normalizes a −0.0 product), so nil-bias
// and zero-bias results are bit-identical.
var zeroBiasI8 [nrI8]float32

// checkGemmI8 validates the GemmI8 operand shapes.
func checkGemmI8(x []int16, sx []float32, zp []int32, pb *PackedBI8, bias []float32, y []float32, batch int) {
	if batch < 0 {
		panic(fmt.Sprintf("tensor: GemmI8 negative batch %d", batch))
	}
	if len(x) < batch*pb.KStride() {
		panic(fmt.Sprintf("tensor: GemmI8 x length %d, want >= %d", len(x), batch*pb.KStride()))
	}
	if len(sx) < batch || len(zp) < batch {
		panic(fmt.Sprintf("tensor: GemmI8 row params %d/%d, want >= %d", len(sx), len(zp), batch))
	}
	if bias != nil && len(bias) < pb.N {
		panic(fmt.Sprintf("tensor: GemmI8 bias length %d, want >= %d", len(bias), pb.N))
	}
	if len(y) < batch*pb.N {
		panic(fmt.Sprintf("tensor: GemmI8 y length %d, want >= %d", len(y), batch*pb.N))
	}
}

// GemmI8 computes the quantized affine map
//
//	Y[r][j] = float32(Σᵢ x[r][i]·w[i][j] − zp[r]·ColSum[j]) · (sx[r]·Scale[j]) + bias[j]
//
// over a register-tile-packed int8 B. x holds dynamic-quantized
// activation codes (uint8 range stored as int16, row stride
// pb.KStride()); sx/zp are the per-row dequantization scale and zero
// point; bias may be nil (treated as zeros, including the +0.0
// normalization). Y rows are fully written, not accumulated. Results
// are bit-identical across kernel tiers.
func GemmI8(x []int16, sx []float32, zp []int32, pb *PackedBI8, bias []float32, y []float32, batch int) {
	checkGemmI8(x, sx, zp, pb, bias, y, batch)
	gemmI8Rows(x, sx, zp, pb, bias, y, 0, batch)
}

// ParallelGemmI8 is GemmI8 with output rows split across workers
// goroutines (0 = GOMAXPROCS). Each row is owned by exactly one worker
// and the integer arithmetic is exact, so any partition is
// bit-identical to serial on every tier. Small problems run serially.
func ParallelGemmI8(x []int16, sx []float32, zp []int32, pb *PackedBI8, bias []float32, y []float32, batch, workers int) {
	checkGemmI8(x, sx, zp, pb, bias, y, batch)
	workers = clampWorkers(workers, batch, pb.K, pb.N)
	if workers <= 1 {
		gemmI8Rows(x, sx, zp, pb, bias, y, 0, batch)
		return
	}
	ParallelFor(batch, workers, func(lo, hi int) {
		gemmI8Rows(x, sx, zp, pb, bias, y, lo, hi)
	})
}

// gemmI8Rows runs the tiled kernel over output rows [lo, hi),
// dispatching to the tier selected at init (or via SetKernel).
func gemmI8Rows(x []int16, sx []float32, zp []int32, pb *PackedBI8, bias []float32, y []float32, lo, hi int) {
	if useAVX2 {
		gemmI8RowsAVX2(x, sx, zp, pb, bias, y, lo, hi)
		return
	}
	gemmI8RowsGo(x, sx, zp, pb, bias, y, lo, hi)
}

// i8TileGroup returns the number of column tiles per cache block: the
// nc dimension of the (mc, nc) blocking, sized so one group's packed
// codes stay L2-resident while the row loop sweeps them.
func i8TileGroup(pb *PackedBI8) int {
	g := i8TileGroupBytes / (pb.kq * quadK * nrI8)
	if g < 1 {
		g = 1
	}
	return g
}

// gemmI8RowsGo is the portable reference tier. The loop nest mirrors
// the AVX2 driver — column-tile groups (nc blocking) outer, rows
// inner, tiles innermost — but any nest would produce identical bits:
// integer dots are exact and the float epilogue is one fixed sequence
// per element.
func gemmI8RowsGo(x []int16, sx []float32, zp []int32, pb *PackedBI8, bias []float32, y []float32, lo, hi int) {
	n, kq, ks := pb.N, pb.kq, pb.KStride()
	tiles := pb.Tiles()
	group := i8TileGroup(pb)
	for t0 := 0; t0 < tiles; t0 += group {
		tMax := min(t0+group, tiles)
		for r := lo; r < hi; r++ {
			xrow := x[r*ks : (r+1)*ks]
			yrow := y[r*n : (r+1)*n]
			sxr, zpr := sx[r], zp[r]
			for t := t0; t < tMax; t++ {
				j0 := t * nrI8
				w := min(nrI8, n-j0)
				gemmI8Tile(xrow, pb.codes[t*kq*quadK*nrI8:], yrow, kq, j0, w, sxr, zpr, pb, bias)
			}
		}
	}
}

// gemmI8Tile computes w (≤ nrI8) output columns of one row against one
// packed column tile: the pure-Go micro-kernel, also the edge path the
// AVX2 driver uses for the zero-padded tail tile. Quads run outer so
// the tile walk is contiguous and the 4 activation codes load once per
// quad instead of once per channel; pad channels beyond w multiply
// zero codes and are simply not written back. Integer accumulation is
// exact, so the nest order cannot change a result.
func gemmI8Tile(xrow []int16, tile []int8, yrow []float32, kq, j0, w int, sxr float32, zpr int32, pb *PackedBI8, bias []float32) {
	var a0, a1, a2, a3, a4, a5, a6, a7 int32
	off := 0
	for q := 0; q < kq; q++ {
		xq := xrow[q*quadK : q*quadK+quadK]
		x0, x1, x2, x3 := int32(xq[0]), int32(xq[1]), int32(xq[2]), int32(xq[3])
		b := tile[off : off+quadK*nrI8 : off+quadK*nrI8]
		a0 += x0*int32(b[0]) + x1*int32(b[1]) + x2*int32(b[2]) + x3*int32(b[3])
		a1 += x0*int32(b[4]) + x1*int32(b[5]) + x2*int32(b[6]) + x3*int32(b[7])
		a2 += x0*int32(b[8]) + x1*int32(b[9]) + x2*int32(b[10]) + x3*int32(b[11])
		a3 += x0*int32(b[12]) + x1*int32(b[13]) + x2*int32(b[14]) + x3*int32(b[15])
		a4 += x0*int32(b[16]) + x1*int32(b[17]) + x2*int32(b[18]) + x3*int32(b[19])
		a5 += x0*int32(b[20]) + x1*int32(b[21]) + x2*int32(b[22]) + x3*int32(b[23])
		a6 += x0*int32(b[24]) + x1*int32(b[25]) + x2*int32(b[26]) + x3*int32(b[27])
		a7 += x0*int32(b[28]) + x1*int32(b[29]) + x2*int32(b[30]) + x3*int32(b[31])
		off += quadK * nrI8
	}
	acc := [nrI8]int32{a0, a1, a2, a3, a4, a5, a6, a7}
	for c := 0; c < w; c++ {
		j := j0 + c
		var bj float32
		if bias != nil {
			bj = bias[j]
		}
		// One fixed float sequence per element — identical in the asm
		// epilogue: convert, scale product, multiply, bias add (no FMA).
		yrow[j] = float32(acc[c]-zpr*pb.ColSum[j])*(sxr*pb.Scale[j]) + bj
	}
}

// MinMaxF32 returns the minimum and maximum of s, or (0, 0) for an
// empty slice. On the AVX2 tier the scan runs 8 lanes wide; min/max
// are exact comparisons, so results are bit-identical across tiers for
// finite inputs (a −0.0/+0.0 pick may differ, which no downstream
// arithmetic can observe). This is the range pass of dynamic
// activation quantization.
func MinMaxF32(s []float32) (lo, hi float32) {
	if len(s) == 0 {
		return 0, 0
	}
	n := len(s) &^ 7
	if useAVX2 && n >= 8 {
		lo, hi = minMaxF32(&s[0], n)
	} else {
		lo, hi = s[0], s[0]
		n = 1
	}
	for _, v := range s[n:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// QuantizeRowI16 writes dst[i] = clamp(0, 255, ⌊src[i]·inv + zpf⌋) —
// the dynamic uint8 activation quantization of the int8 GEMM path,
// stored widened to int16 so the micro-kernel can broadcast quads
// directly into VPMADDWD. zpf carries the zero point plus the 0.5
// rounding bias (⌊x+zp+0.5⌋ = round-half-up), so the kernel is a pure
// multiply-add-floor-clamp chain. The AVX2 tier performs exactly the
// scalar operation sequence (f32 multiply, f32 add, floor, truncating
// convert, integer clamp), so codes are bit-identical across tiers for
// finite inputs.
func QuantizeRowI16(dst []int16, src []float32, inv, zpf float32) {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("tensor: QuantizeRowI16 dst length %d < src %d", len(dst), len(src)))
	}
	n := 0
	if useAVX2 {
		n = len(src) &^ 15
		if n > 0 {
			quantizeI16(&dst[0], &src[0], n, inv, zpf)
		}
	}
	quantizeRowI16Go(dst[n:len(src)], src[n:], inv, zpf)
}

// quantizeRowI16Go is the scalar reference (and the tail path of the
// AVX2 tier): per element one f32 multiply, one f32 add, a float64
// floor (exact for every f32 value), and an integer clamp.
func quantizeRowI16Go(dst []int16, src []float32, inv, zpf float32) {
	for i, v := range src {
		c := int32(math.Floor(float64(v*inv + zpf)))
		if c < 0 {
			c = 0
		} else if c > 255 {
			c = 255
		}
		dst[i] = int16(c)
	}
}
