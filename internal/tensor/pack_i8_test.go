package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// availableTiers lists the kernel tiers testable on this host.
func availableTiers(testing.TB) []string {
	tiers := []string{KernelGo}
	if KernelSupported(KernelAVX2) {
		tiers = append(tiers, KernelAVX2)
	}
	return tiers
}

// setTierForTest switches the active kernel tier, returning a restore
// func for the previous tier.
func setTierForTest(t testing.TB, tier string) (restore func()) {
	t.Helper()
	prev := KernelTier()
	if err := SetKernel(tier); err != nil {
		t.Fatalf("SetKernel(%q): %v", tier, err)
	}
	return func() {
		if err := SetKernel(prev); err != nil {
			t.Fatalf("restore kernel tier %q: %v", prev, err)
		}
	}
}

// refGemmI8 is the obviously-correct reference: per output element,
// one scalar integer dot over the original (unpacked) codes plus the
// same fixed float epilogue sequence. GemmI8 on every tier must match
// it bit-for-bit.
func refGemmI8(x []int16, sx []float32, zp []int32, codes []int8, k, n int, scale []float32, colSum []int32, bias []float32, y []float32, batch, ks int) {
	for r := 0; r < batch; r++ {
		for j := 0; j < n; j++ {
			var dot int32
			col := codes[j*k : (j+1)*k]
			for i := 0; i < k; i++ {
				dot += int32(x[r*ks+i]) * int32(col[i])
			}
			var bj float32
			if bias != nil {
				bj = bias[j]
			}
			y[r*n+j] = float32(dot-zp[r]*colSum[j])*(sx[r]*scale[j]) + bj
		}
	}
}

// randI8Problem builds a random quantized GEMM problem: codes in
// weight range [-127, 127], activations in uint8 range, realistic
// scales, exact colSums.
func randI8Problem(rng *rand.Rand, batch, k, n int, withBias bool) (x []int16, sx []float32, zp []int32, codes []int8, scale []float32, colSum []int32, bias []float32, pb *PackedBI8) {
	codes = make([]int8, k*n)
	for i := range codes {
		codes[i] = int8(rng.Intn(255) - 127)
	}
	scale = make([]float32, n)
	colSum = make([]int32, n)
	for j := 0; j < n; j++ {
		scale[j] = float32(rng.Float64()*0.02 + 1e-4)
		var s int32
		for i := 0; i < k; i++ {
			s += int32(codes[j*k+i])
		}
		colSum[j] = s
	}
	pb = PackBI8(codes, k, n, scale, colSum)
	ks := pb.KStride()
	x = make([]int16, batch*ks)
	for i := range x {
		x[i] = int16(rng.Intn(256)) // garbage also lands in pad lanes — must not matter
	}
	sx = make([]float32, batch)
	zp = make([]int32, batch)
	for r := 0; r < batch; r++ {
		sx[r] = float32(rng.Float64()*0.05 + 1e-4)
		zp[r] = int32(rng.Intn(256))
	}
	if withBias {
		bias = make([]float32, n)
		for j := range bias {
			bias[j] = float32(rng.NormFloat64())
		}
	}
	return
}

// i8Shapes exercises every edge the pack layout has: k not a multiple
// of 4, n remainder below the tile width, single/empty A, and rows
// around the mrI8 micro-tile boundary.
var i8Shapes = []struct{ batch, k, n int }{
	{0, 16, 8},   // empty A: no output rows at all
	{1, 16, 8},   // single row → 1×8 kernel only
	{1, 1, 1},    // minimal everything
	{3, 7, 5},    // k%4=3, n%8=5, batch < mrI8
	{4, 8, 8},    // exactly one 4×8 pass
	{5, 12, 16},  // one 4-row block + remainder row
	{8, 64, 24},  // multiple tiles, clean k
	{9, 33, 17},  // odd everything
	{16, 31, 40}, // k%4=3 across several blocks
	{2, 4, 31},   // tail tile dominates
	{6, 130, 9},  // k pad + 1-col tail tile
}

func TestGemmI8MatchesReference(t *testing.T) {
	for _, tier := range availableTiers(t) {
		t.Run(tier, func(t *testing.T) {
			restore := setTierForTest(t, tier)
			defer restore()
			rng := rand.New(rand.NewSource(42))
			for _, sh := range i8Shapes {
				for _, withBias := range []bool{false, true} {
					x, sx, zp, codes, scale, colSum, bias, pb := randI8Problem(rng, sh.batch, sh.k, sh.n, withBias)
					got := make([]float32, sh.batch*sh.n)
					want := make([]float32, sh.batch*sh.n)
					GemmI8(x, sx, zp, pb, bias, got, sh.batch)
					refGemmI8(x, sx, zp, codes, sh.k, sh.n, scale, colSum, bias, want, sh.batch, pb.KStride())
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("shape %v bias=%v: y[%d] = %g, want %g (bit-exact)", sh, withBias, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

func TestParallelGemmI8BitIdenticalToSerial(t *testing.T) {
	for _, tier := range availableTiers(t) {
		t.Run(tier, func(t *testing.T) {
			restore := setTierForTest(t, tier)
			defer restore()
			rng := rand.New(rand.NewSource(7))
			for _, sh := range []struct{ batch, k, n int }{{37, 33, 17}, {128, 64, 40}, {256, 96, 48}} {
				x, sx, zp, _, _, _, bias, pb := randI8Problem(rng, sh.batch, sh.k, sh.n, true)
				serial := make([]float32, sh.batch*sh.n)
				GemmI8(x, sx, zp, pb, bias, serial, sh.batch)
				for _, workers := range []int{2, 3, 5, 8} {
					par := make([]float32, sh.batch*sh.n)
					// Run the sharded path directly so a 1-CPU host still
					// exercises multi-shard partitions.
					ParallelFor(sh.batch, workers, func(lo, hi int) {
						gemmI8Rows(x, sx, zp, pb, bias, par, lo, hi)
					})
					for i := range serial {
						if par[i] != serial[i] {
							t.Fatalf("shape %v workers=%d: y[%d] = %g, want %g", sh, workers, i, par[i], serial[i])
						}
					}
					par2 := make([]float32, sh.batch*sh.n)
					ParallelGemmI8(x, sx, zp, pb, bias, par2, sh.batch, workers)
					for i := range serial {
						if par2[i] != serial[i] {
							t.Fatalf("shape %v ParallelGemmI8 workers=%d: y[%d] = %g, want %g", sh, workers, i, par2[i], serial[i])
						}
					}
				}
			}
		})
	}
}

func TestPackBI8PadLanesAreZero(t *testing.T) {
	k, n := 7, 13 // kq=2 (one pad k), tiles=2 (3 pad columns)
	codes := make([]int8, k*n)
	for i := range codes {
		codes[i] = int8(i%255 - 127)
	}
	scale := make([]float32, n)
	colSum := make([]int32, n)
	for j := range scale {
		scale[j] = 1
	}
	pb := PackBI8(codes, k, n, scale, colSum)
	if pb.KStride() != 8 {
		t.Fatalf("KStride = %d, want 8", pb.KStride())
	}
	if pb.Tiles() != 2 {
		t.Fatalf("Tiles = %d, want 2", pb.Tiles())
	}
	// Every packed byte must either be a source code or zero; count
	// non-zeros and verify round-trip per (i, j).
	for j := 0; j < n; j++ {
		tl := pb.codes[(j/nrI8)*pb.kq*quadK*nrI8:]
		c := j % nrI8
		for i := 0; i < pb.KStride(); i++ {
			got := tl[(i/quadK)*quadK*nrI8+c*quadK+i%quadK]
			var want int8
			if i < k {
				want = codes[j*k+i]
			}
			if got != want {
				t.Fatalf("packed[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestPackBI8DegenerateK(t *testing.T) {
	pb := PackBI8(nil, 0, 3, []float32{1, 1, 1}, []int32{0, 0, 0})
	if pb.KStride() < quadK {
		t.Fatalf("KStride = %d, want >= %d", pb.KStride(), quadK)
	}
	x := make([]int16, 2*pb.KStride())
	y := make([]float32, 2*3)
	GemmI8(x, []float32{1, 1}, []int32{0, 0}, pb, []float32{5, 6, 7}, y, 2)
	want := []float32{5, 6, 7, 5, 6, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestMinMaxF32(t *testing.T) {
	for _, tier := range availableTiers(t) {
		t.Run(tier, func(t *testing.T) {
			restore := setTierForTest(t, tier)
			defer restore()
			rng := rand.New(rand.NewSource(3))
			for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 200} {
				s := make([]float32, n)
				for i := range s {
					s[i] = float32(rng.NormFloat64() * 100)
				}
				lo, hi := MinMaxF32(s)
				wlo, whi := float32(0), float32(0)
				if n > 0 {
					wlo, whi = s[0], s[0]
					for _, v := range s {
						if v < wlo {
							wlo = v
						}
						if v > whi {
							whi = v
						}
					}
				}
				if lo != wlo || hi != whi {
					t.Fatalf("n=%d: MinMaxF32 = (%g, %g), want (%g, %g)", n, lo, hi, wlo, whi)
				}
			}
		})
	}
}

func TestQuantizeRowI16TierEquivalence(t *testing.T) {
	for _, tier := range availableTiers(t) {
		t.Run(tier, func(t *testing.T) {
			restore := setTierForTest(t, tier)
			defer restore()
			rng := rand.New(rand.NewSource(9))
			for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 100, 512} {
				src := make([]float32, n)
				for i := range src {
					src[i] = float32(rng.NormFloat64() * 10)
				}
				inv := float32(rng.Float64()*20 + 0.1)
				zpf := float32(rng.Intn(256)) + 0.5
				got := make([]int16, n)
				QuantizeRowI16(got, src, inv, zpf)
				want := make([]int16, n)
				quantizeRowI16Go(want, src, inv, zpf)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d: code[%d] = %d, want %d (src=%g inv=%g zpf=%g)", n, i, got[i], want[i], src[i], inv, zpf)
					}
				}
				// Spot-check the scalar definition itself.
				for i, v := range src {
					c := int32(math.Floor(float64(v*inv + zpf)))
					if c < 0 {
						c = 0
					} else if c > 255 {
						c = 255
					}
					if int32(want[i]) != c {
						t.Fatalf("scalar defn mismatch at %d", i)
					}
				}
			}
		})
	}
}

// FuzzGemmI8KernelEquiv cross-checks the two kernel tiers on random
// shapes and payloads: the int8 GEMM contract is bit-identical output
// across tiers (integer dots are exact; the float epilogue is one
// fixed sequence). Skips on hosts without the AVX2 tier.
func FuzzGemmI8KernelEquiv(f *testing.F) {
	f.Add(int64(1), 4, 16, 8)
	f.Add(int64(2), 3, 7, 5)
	f.Add(int64(3), 9, 33, 17)
	f.Add(int64(4), 1, 1, 1)
	f.Add(int64(5), 8, 130, 31)
	f.Fuzz(func(t *testing.T, seed int64, batch, k, n int) {
		if !KernelSupported(KernelAVX2) {
			t.Skip("AVX2 tier unavailable")
		}
		if batch < 0 || k < 1 || n < 1 || batch > 64 || k > 512 || n > 96 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		x, sx, zp, _, _, _, bias, pb := randI8Problem(rng, batch, k, n, seed%2 == 0)

		restore := setTierForTest(t, KernelGo)
		goOut := make([]float32, batch*n)
		GemmI8(x, sx, zp, pb, bias, goOut, batch)
		restore()

		restore = setTierForTest(t, KernelAVX2)
		asmOut := make([]float32, batch*n)
		GemmI8(x, sx, zp, pb, bias, asmOut, batch)
		restore()

		for i := range goOut {
			if goOut[i] != asmOut[i] {
				t.Fatalf("batch=%d k=%d n=%d: y[%d] go=%g avx2=%g", batch, k, n, i, goOut[i], asmOut[i])
			}
		}
	})
}

func BenchmarkGemmI8RM(b *testing.B) {
	benchGemmI8(b, 256, 512, 256)
}

func benchGemmI8(b *testing.B, batch, k, n int) {
	rng := rand.New(rand.NewSource(1))
	x, sx, zp, _, _, _, bias, pb := randI8Problem(rng, batch, k, n, true)
	y := make([]float32, batch*n)
	b.SetBytes(int64(2 * batch * k * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmI8(x, sx, zp, pb, bias, y, batch)
	}
	b.ReportMetric(2*float64(batch)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GOPS")
}

// BenchmarkGemmI8PerElementRM reconstructs the pre-tiling int8 path —
// one DotU8S8 per output element over column-major codes — as the
// speedup baseline for the register-tiled kernel (EXPERIMENTS.md
// kernel table).
func BenchmarkGemmI8PerElementRM(b *testing.B) {
	batch, k, n := 256, 512, 256
	rng := rand.New(rand.NewSource(1))
	codes := make([]int8, k*n)
	for i := range codes {
		codes[i] = int8(rng.Intn(255) - 127)
	}
	scale := make([]float32, n)
	colSum := make([]int32, n)
	for j := 0; j < n; j++ {
		scale[j] = 0.01
		var s int32
		for i := 0; i < k; i++ {
			s += int32(codes[j*k+i])
		}
		colSum[j] = s
	}
	xq := make([]uint8, batch*k)
	for i := range xq {
		xq[i] = uint8(rng.Intn(256))
	}
	bias := make([]float32, n)
	y := make([]float32, batch*n)
	b.SetBytes(int64(2 * batch * k * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < batch; r++ {
			xrow := xq[r*k : (r+1)*k]
			sxr, zpr := float32(0.02), int32(128)
			for j := 0; j < n; j++ {
				dot := DotU8S8(xrow, codes[j*k:(j+1)*k])
				y[r*n+j] = float32(dot-zpr*colSum[j])*(sxr*scale[j]) + bias[j]
			}
		}
	}
}

func BenchmarkQuantizeRowI16(b *testing.B) {
	src := make([]float32, 512)
	rng := rand.New(rand.NewSource(1))
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	dst := make([]int16, 512)
	b.SetBytes(512 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizeRowI16(dst, src, 42.5, 128.5)
	}
}

func ExamplePackedBI8_KStride() {
	pb := PackBI8(make([]int8, 7*3), 7, 3, make([]float32, 3), make([]int32, 3))
	fmt.Println(pb.KStride())
	// Output: 8
}
