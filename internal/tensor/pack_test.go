package tensor

import (
	"testing"

	"recsys/internal/stats"
)

// packShapes covers the degenerate and odd cases the micro-kernel's
// tiling must survive: single rows/columns, inner dims of 1, sizes
// that are not multiples of blockSize (64) or the nr=4 register tile.
var packShapes = [][3]int{
	{1, 1, 1},
	{1, 8, 8},
	{8, 1, 8},
	{8, 8, 1},
	{3, 5, 7},
	{64, 64, 64},
	{64, 32, 48},
	{65, 63, 66},
	{300, 64, 80},
	{517, 33, 129},
	{2, 130, 3},
}

// assertGemmMatch applies the tier-dependent numerics contract (see
// cpu.go): the pure-Go packed kernel must be bit-identical to the
// serial Gemm reference; the AVX2/FMA tier is held to the
// relative-epsilon bound instead.
func assertGemmMatch(t *testing.T, got, want *Tensor, k int, context string) {
	t.Helper()
	if !GemmClose(got, want, k) {
		if GemmBitExact() {
			t.Fatalf("%s: go-tier packed result not bit-identical to serial Gemm", context)
		}
		t.Fatalf("%s: %s-tier packed result beyond epsilon of serial Gemm", context, KernelTier())
	}
}

func TestGemmPackedMatchesSerial(t *testing.T) {
	r := stats.NewRNG(21)
	for _, dims := range packShapes {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		want := New(dims[0], dims[2])
		Gemm(a, b, want)
		pb := PackB(b)
		got := New(dims[0], dims[2])
		GemmPacked(a, pb, got)
		assertGemmMatch(t, got, want, dims[1], benchName(dims))
	}
}

func TestParallelGemmPackedMatchesSerial(t *testing.T) {
	r := stats.NewRNG(22)
	for _, dims := range packShapes {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		want := New(dims[0], dims[2])
		Gemm(a, b, want)
		pb := PackB(b)
		// Serial packed result: the parallel row partition must
		// reproduce it exactly on every tier, since each output row is
		// owned by one worker.
		serial := New(dims[0], dims[2])
		GemmPacked(a, pb, serial)
		for _, workers := range []int{0, 1, 2, 7} {
			got := New(dims[0], dims[2])
			ParallelGemmPacked(a, pb, got, workers)
			assertGemmMatch(t, got, want, dims[1], benchName(dims))
			if !Equal(got, serial, 0) {
				t.Fatalf("dims %v workers %d: parallel packed result not bit-identical to serial packed", dims, workers)
			}
		}
	}
}

// TestParallelGemmPackedMultiBlock forces the kc cache blocking to
// span several L2 blocks (k·n·4 well above l2PanelBytes) and checks
// the blocked parallel pass stays bit-identical to the serial packed
// kernel on the active tier — the per-row panel order is unchanged by
// blocking, so not even the FMA tier may drift.
func TestParallelGemmPackedMultiBlock(t *testing.T) {
	r := stats.NewRNG(29)
	m, k, n := 40, 1024, 512
	if parallelKC(n) >= k {
		t.Fatalf("shape %dx%dx%d does not exercise multiple kc blocks (kc=%d)", m, k, n, parallelKC(n))
	}
	a := randTensor(r, m, k)
	b := randTensor(r, k, n)
	pb := PackB(b)
	serial := New(m, n)
	GemmPacked(a, pb, serial)
	for _, workers := range []int{2, 3, 7} {
		got := New(m, n)
		ParallelGemmPacked(a, pb, got, workers)
		if !Equal(got, serial, 0) {
			t.Fatalf("workers %d: multi-block parallel result not bit-identical to serial packed", workers)
		}
	}
}

func TestGemmPackedAccumulates(t *testing.T) {
	r := stats.NewRNG(23)
	a := randTensor(r, 70, 65)
	b := randTensor(r, 65, 67)
	got := randTensor(r, 70, 67)
	want := got.Clone()
	Gemm(a, b, want)
	GemmPacked(a, PackB(b), got)
	assertGemmMatch(t, got, want, 65, "70x65x67 accumulate")
}

// TestGemmPackedZeroSkip checks the packed kernel preserves the
// reference kernel's skip of zero A entries, which matters for
// bit-identical signed zeros and NaN propagation.
func TestGemmPackedZeroSkip(t *testing.T) {
	a := New(1, 2)
	a.Set(0, 0, 0) // zero entry must be skipped, not multiplied
	a.Set(2, 0, 1)
	b := New(2, 4)
	for j := 0; j < 4; j++ {
		b.Set(float32(j+1), 0, j)
		b.Set(float32(j+5), 1, j)
	}
	want := New(1, 4)
	Gemm(a, b, want)
	got := New(1, 4)
	GemmPacked(a, PackB(b), got)
	if !Equal(got, want, 0) {
		t.Fatal("zero-skip behaviour differs")
	}
}

func TestGemmPackedPanicsOnShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := randTensor(stats.NewRNG(1), 2, 5)
	GemmPacked(New(4, 3), PackB(b), New(4, 5))
}

func BenchmarkGemmSerial(b *testing.B) {
	benchGemm(b, func(a, w, c *Tensor, _ *PackedB) { Gemm(a, w, c) })
}

func BenchmarkGemmPacked(b *testing.B) {
	benchGemm(b, func(a, _, c *Tensor, pb *PackedB) { GemmPacked(a, pb, c) })
}

func BenchmarkGemmPackedParallel(b *testing.B) {
	benchGemm(b, func(a, _, c *Tensor, pb *PackedB) { ParallelGemmPacked(a, pb, c, 0) })
}

func benchGemm(b *testing.B, f func(a, w, c *Tensor, pb *PackedB)) {
	r := stats.NewRNG(1)
	for _, dims := range [][3]int{{64, 512, 512}, {256, 512, 512}} {
		b.Run(benchName(dims), func(b *testing.B) {
			a := randTensor(r, dims[0], dims[1])
			w := randTensor(r, dims[1], dims[2])
			pb := PackB(w)
			c := New(dims[0], dims[2])
			b.SetBytes(int64(4 * dims[0] * dims[1] * dims[2]))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Fill(0)
				f(a, w, c, pb)
			}
		})
	}
}

func benchName(d [3]int) string {
	return "m" + itoa(d[0]) + "k" + itoa(d[1]) + "n" + itoa(d[2])
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
