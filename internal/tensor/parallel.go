package tensor

import (
	"runtime"
	"sync"
)

// ParallelGemm computes C = A·B + C like Gemm, splitting A's rows
// across workers goroutines (0 = GOMAXPROCS). Because the row
// partition assigns each output row to exactly one worker and the
// per-row accumulation order is unchanged, results are bit-identical
// to the serial kernel.
func ParallelGemm(a, b, c *Tensor, workers int) {
	m, _, _ := checkGemm(a, b, c)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 || m < 2*blockSize {
		Gemm(a, b, c)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			aRows := FromSlice(a.data[lo*a.shape[1]:hi*a.shape[1]], hi-lo, a.shape[1])
			cRows := FromSlice(c.data[lo*c.shape[1]:hi*c.shape[1]], hi-lo, c.shape[1])
			Gemm(aRows, b, cRows)
		}(lo, hi)
	}
	wg.Wait()
}
