package tensor

import (
	"sync"
)

// ParallelGemm computes C = A·B + C like Gemm, splitting A's rows
// across workers goroutines (0 = GOMAXPROCS). Because the row
// partition assigns each output row to exactly one worker and the
// per-row accumulation order is unchanged, results are bit-identical
// to the serial kernel. Problems below minParallelMAdds multiply-adds
// run serially — at that size goroutine fan-out costs more than the
// compute.
func ParallelGemm(a, b, c *Tensor, workers int) {
	m, k, n := checkGemm(a, b, c)
	workers = clampWorkers(workers, m, k, n)
	if workers <= 1 {
		Gemm(a, b, c)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := min(lo+chunk, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			aRows := FromSlice(a.data[lo*k:hi*k], hi-lo, k)
			cRows := FromSlice(c.data[lo*n:hi*n], hi-lo, n)
			Gemm(aRows, b, cRows)
		}(lo, hi)
	}
	wg.Wait()
}
