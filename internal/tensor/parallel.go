package tensor

// ParallelGemm computes C = A·B + C like Gemm, splitting A's rows
// across workers goroutines (0 = GOMAXPROCS). Because the row
// partition assigns each output row to exactly one worker and the
// per-row accumulation order is unchanged, results are bit-identical
// to the serial kernel. Problems below minParallelMAdds multiply-adds
// run serially — at that size goroutine fan-out costs more than the
// compute. Fan-out goes through ParallelFor, so a panic in any shard
// surfaces on the calling goroutine instead of killing the process.
func ParallelGemm(a, b, c *Tensor, workers int) {
	m, k, n := checkGemm(a, b, c)
	workers = clampWorkers(workers, m, k, n)
	if workers <= 1 {
		Gemm(a, b, c)
		return
	}
	ParallelFor(m, workers, func(lo, hi int) {
		aRows := FromSlice(a.data[lo*k:hi*k], hi-lo, k)
		cRows := FromSlice(c.data[lo*n:hi*n], hi-lo, n)
		Gemm(aRows, b, cRows)
	})
}
