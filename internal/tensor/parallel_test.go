package tensor

import (
	"testing"

	"recsys/internal/stats"
)

func TestParallelGemmMatchesSerial(t *testing.T) {
	r := stats.NewRNG(11)
	for _, dims := range [][3]int{
		{1, 8, 8},     // degenerate row count → serial path
		{64, 32, 48},  // below the parallel threshold
		{300, 64, 80}, // parallel path
		{517, 33, 129},
	} {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		want := New(dims[0], dims[2])
		Gemm(a, b, want)
		for _, workers := range []int{0, 1, 2, 7} {
			got := New(dims[0], dims[2])
			ParallelGemm(a, b, got, workers)
			if !Equal(got, want, 0) {
				t.Fatalf("dims %v workers %d: parallel result not bit-identical", dims, workers)
			}
		}
	}
}

func TestParallelGemmAccumulates(t *testing.T) {
	r := stats.NewRNG(13)
	a := randTensor(r, 256, 64)
	b := randTensor(r, 64, 64)
	got := randTensor(r, 256, 64)
	want := got.Clone()
	Gemm(a, b, want)
	ParallelGemm(a, b, got, 4)
	if !Equal(got, want, 0) {
		t.Fatal("parallel accumulation differs from serial")
	}
}

func TestParallelGemmPanicsOnShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParallelGemm(New(4, 3), New(2, 5), New(4, 5), 2)
}

func BenchmarkParallelGemm512(b *testing.B) {
	r := stats.NewRNG(1)
	x := randTensor(r, 512, 512)
	y := randTensor(r, 512, 512)
	c := New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(0)
		ParallelGemm(x, y, c, 0)
	}
}
