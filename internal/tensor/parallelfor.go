package tensor

import "sync"

// Intra-op kernel fan-out (row-partitioned GEMM and SLS shards) runs on
// goroutines other than the caller's, and a panic on a bare goroutine
// kills the whole process — no enclosing recover, anywhere, can catch
// it. In a co-located serving engine that turns one bad shard into an
// outage for every model on the host. ShardGroup and ParallelFor are
// the only sanctioned way to fan work out inside a kernel: each shard
// runs under its own recover, the first captured panic is re-raised on
// the *calling* goroutine after every shard has finished, and callers
// therefore observe exactly the serial kernel's panic behaviour — which
// the engine's per-request recover can convert into an error.

// ShardGroup runs kernel shards as goroutines while confining their
// panics: Go wraps each shard in a recover, and Wait re-panics the
// first captured panic value on the waiting goroutine once all shards
// are done. The zero value is ready to use; a group must not be reused
// after Wait.
type ShardGroup struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	pval any  // first captured panic value
	pset bool // distinguishes panic(nil)-adjacent values from "no panic"
}

// Go runs fn as one shard.
func (g *ShardGroup) Go(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.mu.Lock()
				if !g.pset {
					g.pset, g.pval = true, r
				}
				g.mu.Unlock()
			}
		}()
		fn()
	}()
}

// Wait blocks until every shard launched with Go has returned, then
// re-panics the first captured shard panic, if any, on the caller.
func (g *ShardGroup) Wait() {
	g.wg.Wait()
	// No lock needed: wg.Wait orders all shard writes before this read.
	if g.pset {
		panic(g.pval)
	}
}

// ParallelFor splits the row range [0, n) into one contiguous chunk per
// worker and runs body(lo, hi) for each chunk, in parallel for
// workers > 1 and inline for workers <= 1. Chunks partition the range
// exactly (each index is owned by one body call), so row-partitioned
// kernels keep their serial accumulation order and stay bit-identical.
// A panic in any chunk is re-raised on the calling goroutine after all
// chunks finish.
func ParallelFor(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var g ShardGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		lo, hi := lo, min(lo+chunk, n)
		g.Go(func() { body(lo, hi) })
	}
	g.Wait()
}
