package tensor

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestParallelForPartition: every index in [0, n) is visited exactly
// once for a spread of range/worker combinations, including workers >
// n and the inline serial path.
func TestParallelForPartition(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {16, 4}, {16, 16}, {16, 100}, {1000, 7},
	} {
		visits := make([]atomic.Int32, tc.n)
		ParallelFor(tc.n, tc.workers, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d workers=%d: bad chunk [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
		})
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, got)
			}
		}
	}
}

// TestParallelForPanicReraisedOnCaller is the tentpole's crash
// reproducer at the mechanism level: before ParallelFor, a panic in an
// intra-op shard ran on a bare goroutine and killed the whole process
// (no recover anywhere could catch it). Now the first shard panic is
// re-raised on the calling goroutine — where the engine's per-request
// recover can turn it into an error — after every shard has finished.
func TestParallelForPanicReraisedOnCaller(t *testing.T) {
	var completed atomic.Int32
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ParallelFor(8, 8, func(lo, hi int) {
			if lo == 2 {
				panic("shard 2 exploded")
			}
			completed.Add(1)
		})
		t.Error("ParallelFor returned normally despite a panicking shard")
	}()
	s, ok := recovered.(string)
	if !ok || !strings.Contains(s, "shard 2 exploded") {
		t.Fatalf("recovered %v, want the shard's panic value", recovered)
	}
	// The panic must not have abandoned the other shards mid-flight:
	// Wait re-raises only after every shard is done.
	if got := completed.Load(); got != 7 {
		t.Fatalf("%d shards completed, want 7", got)
	}
}

// TestParallelForConcurrentPanics: several shards panicking at once
// must neither deadlock nor crash; exactly one value is re-raised.
func TestParallelForConcurrentPanics(t *testing.T) {
	for round := 0; round < 20; round++ {
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			ParallelFor(16, 16, func(lo, hi int) {
				panic(lo) // every shard panics
			})
		}()
		if _, ok := recovered.(int); !ok {
			t.Fatalf("round %d: recovered %v, want a shard index", round, recovered)
		}
	}
}

// TestParallelForSerialPanic: the inline workers<=1 path panics on the
// caller directly, identically to the serial kernel.
func TestParallelForSerialPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("serial ParallelFor swallowed the panic")
		}
	}()
	ParallelFor(4, 1, func(lo, hi int) { panic("serial") })
}

// TestShardGroupNoPanic: a clean group waits for all shards and
// returns normally.
func TestShardGroupNoPanic(t *testing.T) {
	var g ShardGroup
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 10 {
		t.Fatalf("ran %d shards, want 10", n.Load())
	}
}

// TestParallelGemmShardPanicRecoverable: a panic raised inside the
// row-partitioned GEMM fan-out (injected via an undersized output
// tensor that defeats the shard's slice bounds) is observable with a
// plain recover on the calling goroutine.
func TestParallelGemmShardPanicRecoverable(t *testing.T) {
	const m, k, n = 64, 64, 64 // above minParallelMAdds, so fan-out engages
	a, b := New(m, k), New(k, n)
	// Hand-build a C whose header claims [m, n] but whose backing array
	// is too short: the last shard's c.data[lo*n:hi*n] slice must panic
	// inside the shard goroutine, not on the caller.
	c := &Tensor{data: make([]float32, (m-1)*n), shape: []int{m, n}}
	defer func() {
		if recover() == nil {
			t.Error("undersized C should have panicked recoverably")
		}
	}()
	ParallelGemm(a, b, c, 4)
}
