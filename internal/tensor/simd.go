package tensor

import "fmt"

// SIMDActive reports whether the assembly kernel tier is selected —
// callers with their own tuned Go fallbacks (e.g. the fixed-width SLS
// loops in internal/nn) branch on it once per row rather than paying a
// dispatch check per element.
func SIMDActive() bool { return useAVX2 }

// AddF32 computes dst[i] += src[i] element-wise. On the AVX2 tier the
// adds run 8 lanes wide; element order and rounding are unchanged, so
// results are bit-identical across tiers. This is the SLS pooled-sum
// accumulation primitive (one call per gathered row).
func AddF32(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AddF32 length mismatch %d vs %d", len(dst), len(src)))
	}
	if useAVX2 && len(dst) > 0 {
		addF32(&dst[0], &src[0], len(dst))
		return
	}
	for i, v := range src {
		dst[i] += v
	}
}

// DequantI8 computes dst[i] = (float32(codes[i])+128)·scale + offset —
// the row-wise int8 embedding dequantization. The AVX2 path converts 8
// codes per step but keeps the scalar operation order (add, multiply,
// add — no FMA), so results are bit-identical across tiers.
func DequantI8(dst []float32, codes []int8, scale, offset float32) {
	if len(dst) != len(codes) {
		panic(fmt.Sprintf("tensor: DequantI8 length mismatch %d vs %d", len(dst), len(codes)))
	}
	if useAVX2 && len(dst) > 0 {
		dequantI8(&dst[0], &codes[0], len(dst), scale, offset)
		return
	}
	for i, code := range codes {
		dst[i] = (float32(code)+128)*scale + offset
	}
}

// DequantAccumI8 computes dst[i] += (float32(codes[i])+128)·scale +
// offset — the fused dequantize-accumulate that pools an int8 row
// without staging it. The AVX2 path dequantizes with DequantI8's exact
// operation order and adds once, so results are bit-identical to
// dequantize-then-AddF32 on every tier.
func DequantAccumI8(dst []float32, codes []int8, scale, offset float32) {
	if len(dst) != len(codes) {
		panic(fmt.Sprintf("tensor: DequantAccumI8 length mismatch %d vs %d", len(dst), len(codes)))
	}
	if useAVX2 && len(dst) > 0 {
		dequantAccumI8(&dst[0], &codes[0], len(dst), scale, offset)
		return
	}
	for i, code := range codes {
		dst[i] += (float32(code)+128)*scale + offset
	}
}

// DotU8S8 returns Σ int32(x[i])·int32(w[i]) — the unsigned-activation
// × signed-weight inner product of the int8 GEMM path. Integer
// arithmetic is exact, so asm and Go agree bit-for-bit. The AVX2
// kernel consumes 16-byte chunks; the tail runs scalar here.
func DotU8S8(x []uint8, w []int8) int32 {
	if len(x) != len(w) {
		panic(fmt.Sprintf("tensor: DotU8S8 length mismatch %d vs %d", len(x), len(w)))
	}
	var s int32
	n := len(x) &^ 15
	if useAVX2 && n > 0 {
		s = dotU8S8(&x[0], &w[0], n)
	} else {
		for i := 0; i < n; i++ {
			s += int32(x[i]) * int32(w[i])
		}
	}
	for i := n; i < len(x); i++ {
		s += int32(x[i]) * int32(w[i])
	}
	return s
}
