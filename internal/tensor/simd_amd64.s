//go:build amd64

#include "textflag.h"

// SLS accumulation and int8 kernels. Unlike the GEMM micro-kernels,
// addF32 and dequantI8 deliberately avoid FMA and preserve the Go
// tier's per-element operation order, so their results are
// bit-identical to the portable kernels; dotU8S8 is integer arithmetic
// and exact by construction. See the numerics contract in cpu.go.

// 128.0, the row-wise int8 code bias (codes are stored as code-128).
DATA f128<>+0(SB)/4, $0x43000000
GLOBL f128<>(SB), RODATA|NOPTR, $4

// func addF32(dst, src *float32, n int)
//
// dst[i] += src[i] for i < n. Element-wise adds vectorize without
// changing any individual rounding, so this is bit-identical to the
// scalar loop.
TEXT ·addF32(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	MOVQ CX, AX
	SHRQ $5, AX           // 32-element chunks
	JZ   v8

loop32:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3
	VADDPS  (DI), Y0, Y0
	VADDPS  32(DI), Y1, Y1
	VADDPS  64(DI), Y2, Y2
	VADDPS  96(DI), Y3, Y3
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ AX
	JNZ  loop32

v8:
	MOVQ CX, AX
	ANDQ $31, AX
	MOVQ AX, CX
	SHRQ $3, AX           // 8-element chunks
	JZ   scalar

loop8:
	VMOVUPS (SI), Y0
	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ AX
	JNZ  loop8

scalar:
	ANDQ $7, CX
	JZ   done

loop1:
	VMOVSS (SI), X0
	VADDSS (DI), X0, X0
	VMOVSS X0, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  loop1

done:
	VZEROUPPER
	RET

// func dequantI8(dst *float32, codes *int8, n int, scale, offset float32)
//
// dst[i] = (float32(codes[i])+128)·scale + offset, the row-wise int8
// dequantization of nn.QuantizedTable. Separate multiply and add (no
// FMA) keep every rounding identical to the Go loop.
TEXT ·dequantI8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ codes+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS scale+24(FP), Y4
	VBROADCASTSS offset+28(FP), Y5
	VBROADCASTSS f128<>(SB), Y6

	MOVQ CX, AX
	SHRQ $3, AX
	JZ   scalar

loop8:
	VPMOVSXBD (SI), Y0    // 8 int8 codes -> 8 int32
	VCVTDQ2PS Y0, Y0
	VADDPS    Y6, Y0, Y0
	VMULPS    Y4, Y0, Y0
	VADDPS    Y5, Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ $8, SI
	ADDQ $32, DI
	DECQ AX
	JNZ  loop8

scalar:
	ANDQ $7, CX
	JZ   done

loop1:
	MOVBLSX    (SI), AX
	VCVTSI2SSL AX, X0, X0
	VADDSS     X6, X0, X0
	VMULSS     X4, X0, X0
	VADDSS     X5, X0, X0
	VMOVSS     X0, (DI)
	ADDQ $1, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  loop1

done:
	VZEROUPPER
	RET

// func dequantAccumI8(dst *float32, codes *int8, n int, scale, offset float32)
//
// dst[i] += (float32(codes[i])+128)·scale + offset — the fused
// dequantize-accumulate for pooling int8 rows without a staging pass.
// The dequantized value is produced with exactly dequantI8's operation
// order and then added in one VADDPS, matching the scalar
// dequant-then-add, so results are bit-identical across tiers.
TEXT ·dequantAccumI8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ codes+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS scale+24(FP), Y4
	VBROADCASTSS offset+28(FP), Y5
	VBROADCASTSS f128<>(SB), Y6

	MOVQ CX, AX
	SHRQ $3, AX
	JZ   scalar

loop8:
	VPMOVSXBD (SI), Y0    // 8 int8 codes -> 8 int32
	VCVTDQ2PS Y0, Y0
	VADDPS    Y6, Y0, Y0
	VMULPS    Y4, Y0, Y0
	VADDPS    Y5, Y0, Y0
	VADDPS    (DI), Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ $8, SI
	ADDQ $32, DI
	DECQ AX
	JNZ  loop8

scalar:
	ANDQ $7, CX
	JZ   done

loop1:
	MOVBLSX    (SI), AX
	VCVTSI2SSL AX, X0, X0
	VADDSS     X6, X0, X0
	VMULSS     X4, X0, X0
	VADDSS     X5, X0, X0
	VADDSS     (DI), X0, X0
	VMOVSS     X0, (DI)
	ADDQ $1, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  loop1

done:
	VZEROUPPER
	RET

// func dotU8S8(x *uint8, w *int8, n int) int32
//
// Σ_{i<n} int32(x[i])·int32(w[i]), n a positive multiple of 16 (the
// Go wrapper handles tails). Bytes are widened to i16 before VPMADDWD
// (u8·s8 products fit i16·i16 pair sums in i32 exactly), avoiding
// VPMADDUBSW's i16 saturation — results are exact, so asm and Go
// tiers agree bit-for-bit.
TEXT ·dotU8S8(SB), NOSPLIT, $0-28
	MOVQ x+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $4, CX
	VPXOR Y0, Y0, Y0

loop:
	VPMOVZXBW (DI), Y1    // 16 u8 -> 16 i16
	VPMOVSXBW (SI), Y2    // 16 s8 -> 16 i16
	VPMADDWD  Y2, Y1, Y3  // 8 i32 pair sums
	VPADDD    Y3, Y0, Y0
	ADDQ $16, DI
	ADDQ $16, SI
	DECQ CX
	JNZ  loop

	// Horizontal i32 sum of Y0.
	VEXTRACTI128 $1, Y0, X1
	VPADDD  X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPADDD  X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPADDD  X1, X0, X0
	VMOVD   X0, AX
	MOVL    AX, ret+24(FP)
	VZEROUPPER
	RET
