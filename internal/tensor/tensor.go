// Package tensor implements dense float32 tensors and the linear-algebra
// kernels (GEMM, GEMV, axpy) that underpin the neural-network operators
// in internal/nn.
//
// All model parameters and activations in the paper's benchmark are fp32
// ("All data and model parameters are stored in fp32 format", §IV), so
// float32 is the only element type. Tensors are row-major and contiguous.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics on a
// negative dimension or an empty shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice (row-major). Mutations are visible to
// the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given indices (rank must match).
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", ix, t.shape[i], i))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Row returns row i of a rank-2 tensor as a slice sharing storage.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	cols := t.shape[1]
	return t.data[i*cols : (i+1)*cols]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing storage with a new shape of equal
// volume. It panics on a volume mismatch.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Equal reports whether two tensors have identical shape and elements
// within tolerance eps.
func Equal(a, b *Tensor, eps float32) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if diff := a.data[i] - b.data[i]; diff > eps || diff < -eps {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between two tensors of identical shape.
func MaxAbsDiff(a, b *Tensor) float32 {
	var m float32
	for i := range a.data {
		d := float32(math.Abs(float64(a.data[i] - b.data[i])))
		if d > m {
			m = d
		}
	}
	return m
}
