package tensor

import (
	"testing"
	"testing/quick"

	"recsys/internal/stats"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(3, 4)
	if a.Rank() != 2 || a.Dim(0) != 3 || a.Dim(1) != 4 || a.Len() != 12 {
		t.Fatalf("bad shape metadata: rank=%d dims=%v len=%d", a.Rank(), a.Shape(), a.Len())
	}
	for i, v := range a.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(42, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 42 {
		t.Errorf("At = %v, want 42", got)
	}
	if got := a.At(0, 0, 0); got != 0 {
		t.Errorf("unrelated element modified: %v", got)
	}
}

func TestOffsetRowMajor(t *testing.T) {
	a := New(2, 3)
	a.Set(7, 1, 2)
	if a.Data()[5] != 7 {
		t.Errorf("row-major layout violated: data=%v", a.Data())
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	a := FromSlice(d, 2, 3)
	if a.At(1, 0) != 4 {
		t.Errorf("At(1,0) = %v, want 4", a.At(1, 0))
	}
	d[0] = 99 // shared storage
	if a.At(0, 0) != 99 {
		t.Error("FromSlice should not copy")
	}
}

func TestRow(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Errorf("Row(1) = %v", r)
	}
	r[0] = -1
	if a.At(1, 0) != -1 {
		t.Error("Row should share storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(100, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestReshape(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v, want 6", b.At(2, 1))
	}
	b.Set(-5, 0, 0)
	if a.At(0, 0) != -5 {
		t.Error("Reshape should share storage")
	}
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"empty shape":       func() { New() },
		"negative dim":      func() { New(2, -1) },
		"fromslice len":     func() { FromSlice([]float32{1}, 2, 2) },
		"reshape volume":    func() { New(2, 3).Reshape(7) },
		"index rank":        func() { New(2, 3).At(1) },
		"index range":       func() { New(2, 3).At(2, 0) },
		"row on rank3":      func() { New(2, 2, 2).Row(0) },
		"negative index":    func() { New(2, 3).At(-1, 0) },
		"set out of range":  func() { New(2).Set(0, 5) },
		"bias rank":         func() { AddBiasRows(New(2), []float32{0, 0}) },
		"bias len":          func() { AddBiasRows(New(2, 3), []float32{0}) },
		"transpose rank":    func() { Transpose(New(2)) },
		"gemv rank":         func() { Gemv(New(2), nil, nil) },
		"gemv shape":        func() { Gemv(New(2, 2), []float32{1}, []float32{1, 2}) },
		"axpy len":          func() { Axpy(1, []float32{1}, []float32{1, 2}) },
		"gemm rank":         func() { Gemm(New(2), New(2, 2), New(2, 2)) },
		"gemm inner":        func() { Gemm(New(2, 3), New(4, 2), New(2, 2)) },
		"gemm output shape": func() { Gemm(New(2, 3), New(3, 2), New(3, 3)) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4.05}, 2, 2)
	if !Equal(a, b, 0.1) {
		t.Error("tensors should be equal within 0.1")
	}
	if Equal(a, b, 0.01) {
		t.Error("tensors should differ at tolerance 0.01")
	}
	if Equal(a, New(4), 1) {
		t.Error("different shapes should not compare equal")
	}
	if Equal(a, New(2, 3), 1) {
		t.Error("different dims should not compare equal")
	}
	if d := MaxAbsDiff(a, b); d < 0.04 || d > 0.06 {
		t.Errorf("MaxAbsDiff = %v, want ~0.05", d)
	}
}

func TestFill(t *testing.T) {
	a := New(3, 3)
	a.Fill(2.5)
	for _, v := range a.Data() {
		if v != 2.5 {
			t.Fatalf("Fill failed: %v", v)
		}
	}
}

// naiveMatMul is the reference implementation Gemm is checked against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for p := 0; p < k; p++ {
				sum += a.At(i, p) * b.At(p, j)
			}
			c.Set(sum, i, j)
		}
	}
	return c
}

func randTensor(r *stats.RNG, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = r.Float32()*2 - 1
	}
	return t
}

func TestGemmSmallExact(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want, 0) {
		t.Errorf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	r := stats.NewRNG(101)
	// Cover shapes below, at, and straddling the blocking tile size.
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 63, 67}, {130, 70, 129}, {17, 200, 33},
	} {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if d := MaxAbsDiff(got, want); d > 1e-4 {
			t.Errorf("dims %v: blocked GEMM deviates from naive by %v", dims, d)
		}
	}
}

func TestGemmAccumulates(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := FromSlice([]float32{1, 1, 1, 1}, 2, 2)
	Gemm(a, b, c)
	want := FromSlice([]float32{6, 7, 8, 9}, 2, 2)
	if !Equal(c, want, 0) {
		t.Errorf("Gemm did not accumulate into C: %v", c.Data())
	}
}

func TestGemvMatchesGemm(t *testing.T) {
	r := stats.NewRNG(103)
	a := randTensor(r, 40, 30)
	x := randTensor(r, 30)
	y := make([]float32, 40)
	Gemv(a, x.Data(), y)
	want := MatMul(a, x.Reshape(30, 1))
	for i := range y {
		if d := y[i] - want.Data()[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("Gemv[%d] = %v, want %v", i, y[i], want.Data()[i])
		}
	}
}

func TestAxpy(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 36 {
		t.Errorf("Axpy = %v", y)
	}
}

func TestAddBiasRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	AddBiasRows(a, []float32{10, 20})
	want := FromSlice([]float32{11, 22, 13, 24}, 2, 2)
	if !Equal(a, want, 0) {
		t.Errorf("AddBiasRows = %v", a.Data())
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		a := randTensor(r, m, n)
		return Equal(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestGemmTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		m, k, n := 1+r.Intn(30), 1+r.Intn(30), 1+r.Intn(30)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return MaxAbsDiff(lhs, rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: A·I == A.
func TestGemmIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		m, n := 1+r.Intn(40), 1+r.Intn(40)
		a := randTensor(r, m, n)
		eye := New(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		return Equal(MatMul(a, eye), a, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGemm256(b *testing.B) {
	r := stats.NewRNG(1)
	x := randTensor(r, 256, 256)
	y := randTensor(r, 256, 256)
	c := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(0)
		Gemm(x, y, c)
	}
}
