package trace

import (
	"fmt"
	"math"
	"strings"
	"time"

	"recsys/internal/stats"
)

// Time-varying arrival processes. The homogeneous Poisson generator
// (loadgen.go) models steady offered load; the SLA experiments need
// the opposite — load that *shifts* — because an adaptive scheduler
// only proves itself when the operating point it tuned for stops being
// the operating point. The generators here draw from an inhomogeneous
// Poisson process via the piecewise-exponential approximation: each
// inter-arrival gap is Exp(1)/rate(now), i.e. the rate is held
// constant across one gap. For rates that change slowly relative to a
// gap (every profile here) this is indistinguishable from exact
// thinning and needs no rejection loop.

// RateFunc returns the instantaneous offered load, in queries per
// second, at absolute time t (microseconds since the run started).
type RateFunc func(tUS float64) float64

// ConstantRate is the homogeneous process: rate(t) = qps.
func ConstantRate(qps float64) RateFunc {
	return func(float64) float64 { return qps }
}

// FlashCrowd steps the rate from qps to mult×qps at time `at` and
// holds it there — the "traffic spike lands and stays" profile the
// QPS-at-SLA experiment uses.
func FlashCrowd(qps, mult float64, at time.Duration) RateFunc {
	atUS := float64(at.Microseconds())
	return func(tUS float64) float64 {
		if tUS >= atUS {
			return qps * mult
		}
		return qps
	}
}

// BurstyRate is a square wave with the given period: the first half of
// every period offers qps, the second half mult×qps.
func BurstyRate(qps, mult float64, period time.Duration) RateFunc {
	pUS := float64(period.Microseconds())
	return func(tUS float64) float64 {
		if math.Mod(tUS, pUS) >= pUS/2 {
			return qps * mult
		}
		return qps
	}
}

// DiurnalRate is a raised sinusoid with the given period, oscillating
// between qps (trough) and mult×qps (peak) — the compressed analogue
// of the paper's observation that production recommendation load
// swings diurnally.
func DiurnalRate(qps, mult float64, period time.Duration) RateFunc {
	pUS := float64(period.Microseconds())
	amp := qps * (mult - 1) / 2
	mid := qps + amp
	return func(tUS float64) float64 {
		return mid - amp*math.Cos(2*math.Pi*tUS/pUS)
	}
}

// VariableLoadGenerator produces arrivals from an inhomogeneous
// Poisson process with the configured rate function.
type VariableLoadGenerator struct {
	// Rate is the instantaneous arrival rate.
	Rate RateFunc
	// Batch is the per-request batch size.
	Batch int

	rng *stats.RNG
	now float64
}

// NewVariableLoadGenerator returns a generator over rate with the
// given per-request batch size.
func NewVariableLoadGenerator(rate RateFunc, batch int, rng *stats.RNG) *VariableLoadGenerator {
	if rate == nil {
		panic("trace: nil rate function")
	}
	if batch <= 0 {
		panic("trace: batch must be positive")
	}
	return &VariableLoadGenerator{Rate: rate, Batch: batch, rng: rng}
}

// Next returns the next arrival. The gap is exponential with mean
// 1e6/rate(now) microseconds; a rate at or below zero is clamped to
// one query per second rather than stalling the generator forever.
func (g *VariableLoadGenerator) Next() Arrival {
	r := g.Rate(g.now)
	if r <= 0 {
		r = 1
	}
	g.now += g.rng.ExpFloat64() * 1e6 / r
	return Arrival{TimeUS: g.now, Batch: g.Batch}
}

// Take returns the next n arrivals.
func (g *VariableLoadGenerator) Take(n int) []Arrival {
	out := make([]Arrival, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// ArrivalSource is any arrival generator — the homogeneous
// LoadGenerator or a VariableLoadGenerator over a rate profile.
type ArrivalSource interface {
	Next() Arrival
	Take(n int) []Arrival
}

// NewArrivalSource builds the named arrival process:
//
//	"poisson"  steady qps (mult and period unused)
//	"flash"    qps stepping to mult×qps at time period (and holding)
//	"bursty"   square wave with the given period between qps and mult×qps
//	"diurnal"  sinusoid with the given period between qps and mult×qps
//
// It is the single point cmd/loadgen's -arrival flag maps through.
func NewArrivalSource(kind string, qps, mult float64, period time.Duration, batch int, rng *stats.RNG) (ArrivalSource, error) {
	if qps <= 0 {
		return nil, fmt.Errorf("trace: arrival qps must be positive, got %g", qps)
	}
	if kind != "poisson" {
		if mult < 1 {
			return nil, fmt.Errorf("trace: arrival peak multiplier must be >= 1, got %g", mult)
		}
		if period <= 0 {
			return nil, fmt.Errorf("trace: arrival period must be positive, got %v", period)
		}
	}
	switch strings.ToLower(kind) {
	case "poisson":
		return NewLoadGenerator(qps, batch, rng), nil
	case "flash":
		return NewVariableLoadGenerator(FlashCrowd(qps, mult, period), batch, rng), nil
	case "bursty":
		return NewVariableLoadGenerator(BurstyRate(qps, mult, period), batch, rng), nil
	case "diurnal":
		return NewVariableLoadGenerator(DiurnalRate(qps, mult, period), batch, rng), nil
	default:
		return nil, fmt.Errorf("trace: unknown arrival process %q (want poisson, flash, bursty, or diurnal)", kind)
	}
}
