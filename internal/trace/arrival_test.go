package trace

import (
	"testing"
	"time"

	"recsys/internal/stats"
)

// countIn returns how many arrivals land in [lo, hi) microseconds.
func countIn(arrivals []Arrival, lo, hi float64) int {
	n := 0
	for _, a := range arrivals {
		if a.TimeUS >= lo && a.TimeUS < hi {
			n++
		}
	}
	return n
}

// TestFlashCrowdRateStep: the empirical rate after the step must be
// ≈ mult× the rate before it.
func TestFlashCrowdRateStep(t *testing.T) {
	rng := stats.NewRNG(7)
	g := NewVariableLoadGenerator(FlashCrowd(1000, 4, time.Second), 1, rng)
	arrivals := g.Take(30000)
	before := countIn(arrivals, 0, 1e6)
	after := countIn(arrivals, 1e6, 2e6)
	ratio := float64(after) / float64(before)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("flash crowd post/pre arrival ratio = %.2f (pre=%d post=%d), want ≈ 4", ratio, before, after)
	}
}

// TestBurstyRateSquareWave: second half of each period carries ≈ mult×
// the first half's arrivals.
func TestBurstyRateSquareWave(t *testing.T) {
	rng := stats.NewRNG(11)
	g := NewVariableLoadGenerator(BurstyRate(2000, 3, time.Second), 1, rng)
	arrivals := g.Take(40000)
	var loHalf, hiHalf int
	for p := 0; p < 4; p++ {
		base := float64(p) * 1e6
		loHalf += countIn(arrivals, base, base+5e5)
		hiHalf += countIn(arrivals, base+5e5, base+1e6)
	}
	ratio := float64(hiHalf) / float64(loHalf)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("bursty high/low half ratio = %.2f, want ≈ 3", ratio)
	}
}

// TestDiurnalRateSwing: the sinusoid's trough half-period must carry
// fewer arrivals than its peak half-period, and total volume must sit
// between the pure-base and pure-peak extremes.
func TestDiurnalRateSwing(t *testing.T) {
	rng := stats.NewRNG(13)
	g := NewVariableLoadGenerator(DiurnalRate(1000, 4, 2*time.Second), 1, rng)
	arrivals := g.Take(20000)
	// Period 2s, cosine trough at t=0: [0, 0.5s)+[1.5s, 2s) is the low
	// shoulder, [0.5s, 1.5s) the high one.
	low := countIn(arrivals, 0, 5e5) + countIn(arrivals, 15e5, 2e6)
	high := countIn(arrivals, 5e5, 15e5)
	if low >= high {
		t.Fatalf("diurnal trough (%d) not below peak (%d)", low, high)
	}
	total := countIn(arrivals, 0, 2e6)
	if total <= 2200 || total >= 7800 {
		t.Fatalf("diurnal 2s volume %d outside (2200, 7800) — mean rate should be ≈ 2500 QPS", total)
	}
}

// TestArrivalTimesMonotonic: every generator must emit strictly
// increasing arrival times.
func TestArrivalTimesMonotonic(t *testing.T) {
	for _, kind := range []string{"poisson", "flash", "bursty", "diurnal"} {
		g, err := NewArrivalSource(kind, 5000, 4, 100*time.Millisecond, 2, stats.NewRNG(3))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		prev := -1.0
		for _, a := range g.Take(5000) {
			if a.TimeUS <= prev {
				t.Fatalf("%s: non-increasing arrival time %f after %f", kind, a.TimeUS, prev)
			}
			if a.Batch != 2 {
				t.Fatalf("%s: batch = %d, want 2", kind, a.Batch)
			}
			prev = a.TimeUS
		}
	}
}

// TestNewArrivalSourceValidation: bad parameters are errors, not
// panics or silent defaults.
func TestNewArrivalSourceValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	cases := []struct {
		name   string
		kind   string
		qps    float64
		mult   float64
		period time.Duration
	}{
		{"unknown_kind", "exponential", 100, 4, time.Second},
		{"zero_qps", "poisson", 0, 4, time.Second},
		{"negative_qps", "flash", -5, 4, time.Second},
		{"sub_unity_mult", "flash", 100, 0.5, time.Second},
		{"zero_period", "bursty", 100, 4, 0},
	}
	for _, tc := range cases {
		if _, err := NewArrivalSource(tc.kind, tc.qps, tc.mult, tc.period, 1, rng); err == nil {
			t.Errorf("%s: NewArrivalSource accepted invalid parameters", tc.name)
		}
	}
}

// TestPoissonSourceMatchesLoadGenerator: the "poisson" kind is the
// homogeneous generator, bit-for-bit.
func TestPoissonSourceMatchesLoadGenerator(t *testing.T) {
	a, err := NewArrivalSource("poisson", 1000, 0, 0, 4, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b := NewLoadGenerator(1000, 4, stats.NewRNG(5))
	got, want := a.Take(100), b.Take(100)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d: %+v != %+v", i, got[i], want[i])
		}
	}
}
