package trace

import "recsys/internal/stats"

// Arrival is one inference request arrival.
type Arrival struct {
	// TimeUS is the absolute arrival time in microseconds.
	TimeUS float64
	// Batch is the number of user-item pairs in the request.
	Batch int
}

// LoadGenerator produces Poisson request arrivals at a configured
// queries-per-second rate — the paper's load model for studying
// latency-bounded throughput under SLA.
type LoadGenerator struct {
	// QPS is the mean arrival rate in queries per second.
	QPS float64
	// Batch is the per-request batch size.
	Batch int

	rng *stats.RNG
	now float64
}

// NewLoadGenerator returns a Poisson generator with the given rate and
// per-request batch size.
func NewLoadGenerator(qps float64, batch int, rng *stats.RNG) *LoadGenerator {
	if qps <= 0 {
		panic("trace: QPS must be positive")
	}
	if batch <= 0 {
		panic("trace: batch must be positive")
	}
	return &LoadGenerator{QPS: qps, Batch: batch, rng: rng}
}

// Next returns the next arrival; inter-arrival gaps are exponential
// with mean 1e6/QPS microseconds.
func (g *LoadGenerator) Next() Arrival {
	g.now += g.rng.ExpFloat64() * 1e6 / g.QPS
	return Arrival{TimeUS: g.now, Batch: g.Batch}
}

// Take returns the next n arrivals.
func (g *LoadGenerator) Take(n int) []Arrival {
	out := make([]Arrival, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
