// Package trace generates sparse-ID streams for embedding-table
// lookups. The paper's Figure 14 shows that the fraction of unique
// sparse IDs varies widely across production use cases (from ~100% for
// random inputs down to ~20%), enabling caching and prefetching
// optimizations; this package provides generators spanning that range,
// a trace-driven replay mode for real ID logs, and the Poisson load
// generator used by the inference-server simulator.
package trace

import (
	"fmt"

	"recsys/internal/stats"
)

// IDGenerator produces embedding-table row IDs in [0, Rows).
type IDGenerator interface {
	Name() string
	// Rows is the table height the generator draws from.
	Rows() int
	// Fill writes len(out) IDs into out.
	Fill(out []int)
}

// Uniform draws IDs uniformly — the "random" bar of Figure 14 (~100%
// unique IDs for short windows).
type Uniform struct {
	rows int
	rng  *stats.RNG
}

// NewUniform returns a uniform generator over [0, rows).
func NewUniform(rows int, rng *stats.RNG) *Uniform {
	if rows <= 0 {
		panic("trace: rows must be positive")
	}
	return &Uniform{rows: rows, rng: rng}
}

// Name implements IDGenerator.
func (u *Uniform) Name() string { return "uniform" }

// Rows implements IDGenerator.
func (u *Uniform) Rows() int { return u.rows }

// Fill implements IDGenerator.
func (u *Uniform) Fill(out []int) {
	for i := range out {
		out[i] = u.rng.Intn(u.rows)
	}
}

// Zipfian draws IDs from a Zipf distribution — the popularity skew that
// makes production embedding accesses cacheable.
type Zipfian struct {
	rows int
	s    float64
	z    *stats.Zipf
	perm []int
}

// NewZipfian returns a Zipf(s) generator over [0, rows). Ranks are
// scattered through the ID space with a fixed permutation so hot rows
// are not physically adjacent (as in real hashed feature IDs).
func NewZipfian(rows int, s float64, rng *stats.RNG) *Zipfian {
	if rows <= 0 {
		panic("trace: rows must be positive")
	}
	return &Zipfian{
		rows: rows,
		s:    s,
		z:    stats.NewZipf(rng.Split(), int64(rows), s),
		perm: rng.Perm(rows),
	}
}

// Name implements IDGenerator.
func (z *Zipfian) Name() string { return fmt.Sprintf("zipf(%.2f)", z.s) }

// Rows implements IDGenerator.
func (z *Zipfian) Rows() int { return z.rows }

// Fill implements IDGenerator.
func (z *Zipfian) Fill(out []int) {
	for i := range out {
		out[i] = z.perm[z.z.Next()]
	}
}

// RepeatWindow re-issues a recently seen ID with probability P and
// otherwise draws from an inner generator — temporal locality from
// users interacting with the same content repeatedly.
type RepeatWindow struct {
	inner  IDGenerator
	p      float64
	window []int
	pos    int
	filled int
	rng    *stats.RNG
}

// NewRepeatWindow wraps inner: with probability p the next ID repeats
// one of the last window IDs.
func NewRepeatWindow(inner IDGenerator, p float64, window int, rng *stats.RNG) *RepeatWindow {
	if p < 0 || p > 1 {
		panic("trace: repeat probability must be in [0,1]")
	}
	if window <= 0 {
		panic("trace: window must be positive")
	}
	return &RepeatWindow{inner: inner, p: p, window: make([]int, window), rng: rng}
}

// Name implements IDGenerator.
func (r *RepeatWindow) Name() string {
	return fmt.Sprintf("repeat(%.2f,%d)+%s", r.p, len(r.window), r.inner.Name())
}

// Rows implements IDGenerator.
func (r *RepeatWindow) Rows() int { return r.inner.Rows() }

// Fill implements IDGenerator.
func (r *RepeatWindow) Fill(out []int) {
	var one [1]int
	for i := range out {
		if r.filled > 0 && r.rng.Float64() < r.p {
			out[i] = r.window[r.rng.Intn(r.filled)]
		} else {
			r.inner.Fill(one[:])
			out[i] = one[0]
		}
		r.window[r.pos] = out[i]
		r.pos = (r.pos + 1) % len(r.window)
		if r.filled < len(r.window) {
			r.filled++
		}
	}
}

// Replay re-plays a recorded ID trace, wrapping at the end — the
// trace-driven mode for instrumenting models with real production logs.
type Replay struct {
	name string
	rows int
	ids  []int
	pos  int
}

// NewReplay wraps a recorded trace. rows must bound every ID.
func NewReplay(name string, ids []int, rows int) *Replay {
	if len(ids) == 0 {
		panic("trace: empty replay trace")
	}
	for _, id := range ids {
		if id < 0 || id >= rows {
			panic(fmt.Sprintf("trace: replay ID %d out of range [0,%d)", id, rows))
		}
	}
	cp := make([]int, len(ids))
	copy(cp, ids)
	return &Replay{name: name, rows: rows, ids: cp}
}

// Name implements IDGenerator.
func (r *Replay) Name() string { return r.name }

// Rows implements IDGenerator.
func (r *Replay) Rows() int { return r.rows }

// Fill implements IDGenerator.
func (r *Replay) Fill(out []int) {
	for i := range out {
		out[i] = r.ids[r.pos]
		r.pos = (r.pos + 1) % len(r.ids)
	}
}

// UniqueFraction draws n IDs and returns the fraction that are distinct
// — the y-axis of Figure 14.
func UniqueFraction(g IDGenerator, n int) float64 {
	if n <= 0 {
		panic("trace: sample size must be positive")
	}
	ids := make([]int, n)
	g.Fill(ids)
	seen := make(map[int]struct{}, n)
	for _, id := range ids {
		seen[id] = struct{}{}
	}
	return float64(len(seen)) / float64(n)
}

// ProductionTraces returns ten synthetic stand-ins for the paper's
// production traces, ordered roughly by decreasing uniqueness so their
// UniqueFraction values span Figure 14's ~20%-95% range.
func ProductionTraces(rows int, rng *stats.RNG) []IDGenerator {
	gens := []IDGenerator{
		NewZipfian(rows, 0.40, rng.Split()),
		NewZipfian(rows, 0.70, rng.Split()),
		NewRepeatWindow(NewUniform(rows, rng.Split()), 0.20, 256, rng.Split()),
		NewZipfian(rows, 0.95, rng.Split()),
		NewRepeatWindow(NewZipfian(rows, 0.70, rng.Split()), 0.30, 512, rng.Split()),
		NewZipfian(rows, 1.10, rng.Split()),
		NewRepeatWindow(NewUniform(rows, rng.Split()), 0.55, 128, rng.Split()),
		NewZipfian(rows, 1.30, rng.Split()),
		NewRepeatWindow(NewZipfian(rows, 1.05, rng.Split()), 0.45, 256, rng.Split()),
		NewRepeatWindow(NewZipfian(rows, 1.25, rng.Split()), 0.60, 128, rng.Split()),
	}
	return gens
}
