package trace

import (
	"sort"
	"testing"
	"testing/quick"

	"recsys/internal/stats"
)

func TestUniformRange(t *testing.T) {
	g := NewUniform(100, stats.NewRNG(1))
	ids := make([]int, 10000)
	g.Fill(ids)
	for _, id := range ids {
		if id < 0 || id >= 100 {
			t.Fatalf("uniform ID %d out of range", id)
		}
	}
	if g.Rows() != 100 || g.Name() != "uniform" {
		t.Error("metadata wrong")
	}
}

func TestUniformNearlyUnique(t *testing.T) {
	// Short window over a huge table: almost all IDs unique.
	g := NewUniform(10_000_000, stats.NewRNG(2))
	if f := UniqueFraction(g, 2000); f < 0.95 {
		t.Errorf("uniform unique fraction = %.3f, want > 0.95", f)
	}
}

func TestZipfianSkewed(t *testing.T) {
	g := NewZipfian(1_000_000, 1.2, stats.NewRNG(3))
	if f := UniqueFraction(g, 2000); f > 0.7 {
		t.Errorf("zipf(1.2) unique fraction = %.3f, want well below uniform", f)
	}
	ids := make([]int, 1000)
	g.Fill(ids)
	for _, id := range ids {
		if id < 0 || id >= 1_000_000 {
			t.Fatalf("zipf ID %d out of range", id)
		}
	}
}

func TestZipfianPermutationScatters(t *testing.T) {
	// With the rank permutation, the most frequent IDs should not all
	// be tiny integers.
	g := NewZipfian(100000, 1.5, stats.NewRNG(4))
	ids := make([]int, 5000)
	g.Fill(ids)
	small := 0
	for _, id := range ids {
		if id < 100 {
			small++
		}
	}
	if float64(small)/float64(len(ids)) > 0.2 {
		t.Errorf("hot IDs clustered at small values (%d/5000); permutation missing?", small)
	}
}

func TestRepeatWindowIncreasesReuse(t *testing.T) {
	rng := stats.NewRNG(5)
	base := UniqueFraction(NewUniform(1_000_000, rng.Split()), 2000)
	rep := UniqueFraction(NewRepeatWindow(NewUniform(1_000_000, rng.Split()), 0.6, 64, rng.Split()), 2000)
	if rep >= base {
		t.Errorf("repeat window should reduce uniqueness: %.3f vs %.3f", rep, base)
	}
	if rep > 0.55 {
		t.Errorf("repeat(0.6) unique fraction = %.3f, want < 0.55", rep)
	}
}

func TestRepeatWindowRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		g := NewRepeatWindow(NewZipfian(500, 1.0, rng.Split()), 0.5, 16, rng.Split())
		ids := make([]int, 500)
		g.Fill(ids)
		for _, id := range ids {
			if id < 0 || id >= 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReplayWrapsAndCopies(t *testing.T) {
	src := []int{3, 1, 4, 1, 5}
	r := NewReplay("t", src, 10)
	src[0] = 9 // must not affect the replay
	out := make([]int, 12)
	r.Fill(out)
	want := []int{3, 1, 4, 1, 5, 3, 1, 4, 1, 5, 3, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("replay[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	if r.Rows() != 10 || r.Name() != "t" {
		t.Error("metadata wrong")
	}
}

func TestConstructorPanics(t *testing.T) {
	rng := stats.NewRNG(1)
	cases := map[string]func(){
		"uniform rows":  func() { NewUniform(0, rng) },
		"zipf rows":     func() { NewZipfian(0, 1, rng) },
		"repeat p":      func() { NewRepeatWindow(NewUniform(5, rng), 1.5, 4, rng) },
		"repeat window": func() { NewRepeatWindow(NewUniform(5, rng), 0.5, 0, rng) },
		"replay empty":  func() { NewReplay("x", nil, 5) },
		"replay range":  func() { NewReplay("x", []int{7}, 5) },
		"unique frac n": func() { UniqueFraction(NewUniform(5, rng), 0) },
		"loadgen qps":   func() { NewLoadGenerator(0, 1, rng) },
		"loadgen batch": func() { NewLoadGenerator(100, 0, rng) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFigure14Span: the ten production stand-ins must span a wide
// uniqueness range (Figure 14 shows ~20% to ~95%) and include both a
// high-reuse and a low-reuse trace.
func TestFigure14Span(t *testing.T) {
	rng := stats.NewRNG(14)
	gens := ProductionTraces(1_000_000, rng)
	if len(gens) != 10 {
		t.Fatalf("ProductionTraces = %d generators, want 10", len(gens))
	}
	var fracs []float64
	for _, g := range gens {
		fracs = append(fracs, UniqueFraction(g, 4000))
	}
	sort.Float64s(fracs)
	if fracs[0] > 0.40 {
		t.Errorf("most-reused trace has unique fraction %.2f, want ≤ 0.40", fracs[0])
	}
	if fracs[len(fracs)-1] < 0.75 {
		t.Errorf("least-reused trace has unique fraction %.2f, want ≥ 0.75", fracs[len(fracs)-1])
	}
	if fracs[len(fracs)-1]-fracs[0] < 0.35 {
		t.Errorf("trace span %.2f too narrow for Figure 14", fracs[len(fracs)-1]-fracs[0])
	}
}

func TestLoadGeneratorRate(t *testing.T) {
	g := NewLoadGenerator(1000, 4, stats.NewRNG(6)) // 1000 QPS → 1ms mean gap
	arr := g.Take(20000)
	if len(arr) != 20000 {
		t.Fatal("Take length wrong")
	}
	// Times strictly increase.
	for i := 1; i < len(arr); i++ {
		if arr[i].TimeUS <= arr[i-1].TimeUS {
			t.Fatal("arrival times not increasing")
		}
		if arr[i].Batch != 4 {
			t.Fatal("batch not propagated")
		}
	}
	meanGapUS := arr[len(arr)-1].TimeUS / float64(len(arr))
	if meanGapUS < 900 || meanGapUS > 1100 {
		t.Errorf("mean inter-arrival = %.1fµs, want ~1000", meanGapUS)
	}
}
