package train

import (
	"recsys/internal/model"
	"recsys/internal/stats"
)

// Teacher generates labeled training data from a hidden ground-truth
// model: features are drawn at random and labels are Bernoulli draws of
// the teacher's predicted click-through rate. Training a student of the
// same architecture against a teacher is the standard synthetic
// evaluation when production click logs are unavailable.
type Teacher struct {
	m   *model.Model
	rng *stats.RNG
	// Sharpen scales the teacher's logits away from 0.5 so that labels
	// carry learnable signal (raw random-init CTRs cluster near 0.5).
	Sharpen float32
}

// NewTeacher builds a ground-truth model of the given config.
func NewTeacher(cfg model.Config, seed uint64) (*Teacher, error) {
	rng := stats.NewRNG(seed)
	m, err := model.Build(cfg, rng.Split())
	if err != nil {
		return nil, err
	}
	return &Teacher{m: m, rng: rng.Split(), Sharpen: 8}, nil
}

// Sample draws one labeled batch.
func (t *Teacher) Sample(batch int) (model.Request, []float32) {
	req := model.NewRandomRequest(t.m.Config, batch, t.rng)
	return req, t.Label(req)
}

// Label draws Bernoulli click labels for an externally supplied request
// — the feedback channel of the online-learning loop, where requests
// actually served to users come back with (simulated) click outcomes.
// Label shares the teacher's RNG with Sample, so calls must not be
// interleaved concurrently without external synchronization (the online
// package's ClickBuffer serializes them under its own lock).
func (t *Teacher) Label(req model.Request) []float32 {
	probs := t.m.CTR(req)
	labels := make([]float32, req.Batch)
	for i, p := range probs {
		// Sharpen around 0.5, then draw the click.
		q := 0.5 + t.Sharpen*(p-0.5)
		if q < 0.02 {
			q = 0.02
		}
		if q > 0.98 {
			q = 0.98
		}
		if t.rng.Float32() < q {
			labels[i] = 1
		}
	}
	return labels
}

// Evaluate scores a student model on freshly drawn teacher data,
// returning the ROC AUC over n samples.
func (t *Teacher) Evaluate(student *model.Model, n int) float64 {
	req, labels := t.Sample(n)
	probs := student.CTR(req)
	scores := make([]float64, n)
	intLabels := make([]int, n)
	for i := range probs {
		scores[i] = float64(probs[i])
		intLabels[i] = int(labels[i])
	}
	return stats.AUC(scores, intLabels)
}
