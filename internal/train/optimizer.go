package train

import (
	"fmt"
	"math"
)

// Optimizer applies gradients to parameters. Dense parameters (FC
// weights and biases) update as whole vectors; embedding tables update
// row-wise with sparse gradients, matching how production systems (and
// DLRM) treat the two parameter classes differently.
type Optimizer interface {
	// UpdateDense applies gradient g to parameter vector p in place.
	// key identifies the parameter for stateful optimizers.
	UpdateDense(key string, p, g []float32)
	// UpdateSparseRow applies gradient g to one embedding row.
	UpdateSparseRow(key string, id int, row, g []float32)
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float32
}

// NewSGD returns an SGD optimizer; it panics on a non-positive rate.
func NewSGD(lr float32) *SGD {
	if lr <= 0 {
		panic("train: learning rate must be positive")
	}
	return &SGD{LR: lr}
}

// UpdateDense implements Optimizer.
func (o *SGD) UpdateDense(_ string, p, g []float32) {
	for i, gi := range g {
		p[i] -= o.LR * gi
	}
}

// UpdateSparseRow implements Optimizer.
func (o *SGD) UpdateSparseRow(_ string, _ int, row, g []float32) {
	for i, gi := range g {
		row[i] -= o.LR * gi
	}
}

// AdaGrad scales each coordinate's step by the inverse square root of
// its accumulated squared gradients — the optimizer DLRM uses for
// embeddings, where row update frequencies follow the skewed ID
// popularity of Figure 14: rare rows keep large steps while hot rows
// anneal.
type AdaGrad struct {
	LR  float32
	Eps float32

	dense  map[string][]float32         // key → per-coordinate accumulator
	sparse map[string]map[int][]float32 // key → row → accumulator
}

// NewAdaGrad returns an AdaGrad optimizer.
func NewAdaGrad(lr float32) *AdaGrad {
	if lr <= 0 {
		panic("train: learning rate must be positive")
	}
	return &AdaGrad{
		LR:     lr,
		Eps:    1e-8,
		dense:  make(map[string][]float32),
		sparse: make(map[string]map[int][]float32),
	}
}

// UpdateDense implements Optimizer.
func (o *AdaGrad) UpdateDense(key string, p, g []float32) {
	acc, ok := o.dense[key]
	if !ok {
		acc = make([]float32, len(p))
		o.dense[key] = acc
	}
	if len(acc) != len(p) {
		panic(fmt.Sprintf("train: parameter %q changed size %d → %d", key, len(acc), len(p)))
	}
	o.apply(acc, p, g)
}

// UpdateSparseRow implements Optimizer.
func (o *AdaGrad) UpdateSparseRow(key string, id int, row, g []float32) {
	rows, ok := o.sparse[key]
	if !ok {
		rows = make(map[int][]float32)
		o.sparse[key] = rows
	}
	acc, ok := rows[id]
	if !ok {
		acc = make([]float32, len(row))
		rows[id] = acc
	}
	o.apply(acc, row, g)
}

func (o *AdaGrad) apply(acc, p, g []float32) {
	for i, gi := range g {
		acc[i] += gi * gi
		p[i] -= o.LR * gi / (float32(math.Sqrt(float64(acc[i]))) + o.Eps)
	}
}

// StateRows reports how many embedding rows hold optimizer state for a
// table — a measure of the sparse-state footprint.
func (o *AdaGrad) StateRows(key string) int { return len(o.sparse[key]) }
