package train

import (
	"testing"

	"recsys/internal/model"
	"recsys/internal/stats"
)

func TestSGDUpdate(t *testing.T) {
	o := NewSGD(0.5)
	p := []float32{1, 2}
	o.UpdateDense("x", p, []float32{2, -2})
	if p[0] != 0 || p[1] != 3 {
		t.Errorf("SGD update = %v", p)
	}
	row := []float32{1}
	o.UpdateSparseRow("t", 0, row, []float32{1})
	if row[0] != 0.5 {
		t.Errorf("SGD sparse update = %v", row)
	}
}

func TestOptimizerConstructorsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSGD(0) },
		func() { NewAdaGrad(-1) },
		func() { NewTrainerWithOptimizer(nil, NewSGD(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	m := buildTiny(t, model.Cat, 1)
	defer func() {
		if recover() == nil {
			t.Error("nil optimizer should panic")
		}
	}()
	NewTrainerWithOptimizer(m, nil)
}

func TestAdaGradStepShrinks(t *testing.T) {
	o := NewAdaGrad(1.0)
	p := []float32{0}
	// Repeated unit gradients: steps shrink as 1/sqrt(k).
	o.UpdateDense("x", p, []float32{1})
	step1 := -p[0]
	prev := p[0]
	o.UpdateDense("x", p, []float32{1})
	step2 := prev - p[0]
	if step2 >= step1 {
		t.Errorf("AdaGrad steps should shrink: %v then %v", step1, step2)
	}
	// First step ≈ lr (accumulator = g²).
	if step1 < 0.99 || step1 > 1.01 {
		t.Errorf("first AdaGrad step = %v, want ~1", step1)
	}
}

func TestAdaGradSparseStatePerRow(t *testing.T) {
	o := NewAdaGrad(0.1)
	hot := []float32{0}
	cold := []float32{0}
	for i := 0; i < 100; i++ {
		o.UpdateSparseRow("t", 1, hot, []float32{1})
	}
	o.UpdateSparseRow("t", 2, cold, []float32{1})
	// The cold row's single step must be far larger than the hot row's
	// 100th step (its accumulator is fresh).
	hotLast := 0.1 / 10.0 // lr / sqrt(100)
	if -cold[0] < float32(hotLast)*5 {
		t.Errorf("cold-row step %v should dwarf hot-row late step %v", -cold[0], hotLast)
	}
	if o.StateRows("t") != 2 {
		t.Errorf("StateRows = %d, want 2", o.StateRows("t"))
	}
}

func TestAdaGradDenseSizeMismatchPanics(t *testing.T) {
	o := NewAdaGrad(0.1)
	o.UpdateDense("x", []float32{1, 2}, []float32{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.UpdateDense("x", []float32{1}, []float32{0})
}

// TestAdaGradTrainsAtLeastAsWellAsSGD: on the skewed-embedding task,
// AdaGrad's per-row adaptive steps should match or beat plain SGD at
// the same nominal rate.
func TestAdaGradTrainsAtLeastAsWellAsSGD(t *testing.T) {
	run := func(opt Optimizer) float32 {
		m := buildTiny(t, model.Dot, 21)
		tr := NewTrainerWithOptimizer(m, opt)
		req := model.NewRandomRequest(m.Config, 32, stats.NewRNG(22))
		labels := make([]float32, 32)
		for i := range labels {
			labels[i] = float32(i % 2)
		}
		var last float32
		for i := 0; i < 150; i++ {
			last = tr.Step(req, labels)
		}
		return last
	}
	sgd := run(NewSGD(0.03))
	ada := run(NewAdaGrad(0.03))
	if ada > sgd*1.5 {
		t.Errorf("AdaGrad final loss %.4f much worse than SGD %.4f", ada, sgd)
	}
	if ada > 0.5 {
		t.Errorf("AdaGrad failed to fit the batch: loss %.4f", ada)
	}
}
