// Package train implements mini-batch SGD training for recommendation
// models: full backpropagation through the Top-MLP, the Cat/Dot feature
// interaction, the Bottom-MLP, and sparse scatter-gradients into the
// embedding tables, with binary-cross-entropy loss on the predicted
// click-through rate.
//
// The paper studies inference, but notes (§II-A) that sparse features
// "not only make training more challenging but also require
// intrinsically different operations"; this package provides those
// operations so the library covers the full DLRM-style workflow. The
// embedding gradient is sparse — only gathered rows are touched —
// mirroring production training systems.
package train

import (
	"fmt"
	"math"

	"recsys/internal/model"
	"recsys/internal/nn"
	"recsys/internal/tensor"
)

// Trainer performs optimization steps on a materialized model.
type Trainer struct {
	m   *model.Model
	opt Optimizer
}

// NewTrainer wraps a model built with model.Build, using plain SGD at
// the given learning rate. It panics on a nil model or non-positive
// learning rate.
func NewTrainer(m *model.Model, lr float32) *Trainer {
	return NewTrainerWithOptimizer(m, NewSGD(lr))
}

// NewTrainerWithOptimizer wraps a model with an explicit optimizer
// (e.g. AdaGrad for production-style sparse training).
func NewTrainerWithOptimizer(m *model.Model, opt Optimizer) *Trainer {
	if m == nil {
		panic("train: nil model")
	}
	if opt == nil {
		panic("train: nil optimizer")
	}
	return &Trainer{m: m, opt: opt}
}

// Model returns the model being trained.
func (t *Trainer) Model() *model.Model { return t.m }

// tape records the intermediates of one forward pass.
type tape struct {
	bottomIn  []*tensor.Tensor // input to each bottom FC
	bottomOut []*tensor.Tensor // post-ReLU output of each bottom FC
	parts     []*tensor.Tensor // concat inputs (bottom output + pooled embeddings)
	concatOut *tensor.Tensor
	topIn     []*tensor.Tensor // input to each top FC
	probs     []float32        // sigmoid outputs
}

// Step runs one SGD step on a batch: forward, BCE loss, backward, and
// in-place parameter updates. labels must hold one {0,1} click label
// per sample. It returns the mean binary-cross-entropy loss of the
// batch (measured before the update).
func (t *Trainer) Step(req model.Request, labels []float32) float32 {
	if len(labels) != req.Batch {
		panic(fmt.Sprintf("train: %d labels for batch %d", len(labels), req.Batch))
	}
	tp := t.forward(req)
	loss := bceLoss(tp.probs, labels)
	t.backward(req, tp, labels)
	return loss
}

// Loss evaluates the mean BCE loss without updating parameters.
func (t *Trainer) Loss(req model.Request, labels []float32) float32 {
	if len(labels) != req.Batch {
		panic(fmt.Sprintf("train: %d labels for batch %d", len(labels), req.Batch))
	}
	return bceLoss(t.forward(req).probs, labels)
}

func (t *Trainer) forward(req model.Request) *tape {
	m := t.m
	tp := &tape{}
	if m.Bottom != nil {
		x := req.Dense
		for _, fc := range m.Bottom.Layers {
			tp.bottomIn = append(tp.bottomIn, x)
			x = fc.Forward(x)
			nn.ReLUInPlace(x) // MLP built with FinalReLU=true
			tp.bottomOut = append(tp.bottomOut, x)
		}
		tp.parts = append(tp.parts, x)
	}
	for i, op := range m.SLS {
		// ForwardTrain, not Forward: training must read the fp32 tables
		// the optimizer updates, not a quantized model's frozen int8
		// serving snapshot.
		tp.parts = append(tp.parts, op.ForwardTrain(req.SparseIDs[i], req.Batch))
	}
	tp.concatOut = m.ConcatOp.Forward(tp.parts)
	x := tp.concatOut
	if m.Interact != nil {
		x = m.Interact.Forward(x)
	}
	for i, fc := range m.Top.Layers {
		tp.topIn = append(tp.topIn, x)
		x = fc.Forward(x)
		if i+1 < len(m.Top.Layers) {
			nn.ReLUInPlace(x)
		}
	}
	probs := make([]float32, req.Batch)
	for i := range probs {
		probs[i] = sigmoid(x.At(i, 0))
	}
	tp.probs = probs
	return tp
}

func (t *Trainer) backward(req model.Request, tp *tape, labels []float32) {
	m := t.m
	batch := req.Batch

	// d(BCE)/d(logit) = (p - y) / batch.
	grad := tensor.New(batch, 1)
	for i := 0; i < batch; i++ {
		grad.Set((tp.probs[i]-labels[i])/float32(batch), i, 0)
	}

	// Top-MLP, reverse order. ReLU sits between layers (not after the
	// last); its mask is recoverable from the next layer's input.
	for i := len(m.Top.Layers) - 1; i >= 0; i-- {
		grad = t.fcBackward(m.Top.Layers[i], tp.topIn[i], grad)
		if i > 0 {
			reluBackward(grad, tp.topIn[i])
		}
	}

	// Interaction.
	if m.Interact != nil {
		grad = dotBackward(m.Interact, tp.concatOut, grad)
	}

	// Concat split.
	partGrads := splitConcat(m.ConcatOp, grad)

	// Sparse scatter-gradient into embedding tables.
	off := 0
	if m.Bottom != nil {
		off = 1
	}
	for i, op := range m.SLS {
		t.slsBackward(op, req.SparseIDs[i], batch, partGrads[off+i])
	}

	// Bottom-MLP.
	if m.Bottom != nil {
		g := partGrads[0]
		for i := len(m.Bottom.Layers) - 1; i >= 0; i-- {
			reluBackward(g, tp.bottomOut[i]) // FinalReLU: every layer has one
			g = t.fcBackward(m.Bottom.Layers[i], tp.bottomIn[i], g)
		}
	}
}

// fcBackward computes dX for Y = X·W + b given dY, then hands dW and
// db to the optimizer.
func (t *Trainer) fcBackward(fc *nn.FC, x, dY *tensor.Tensor) *tensor.Tensor {
	// dX = dY · Wᵀ (with the pre-update weights).
	dX := tensor.New(x.Dim(0), fc.In)
	tensor.Gemm(dY, tensor.Transpose(fc.W), dX)

	// dW = Xᵀ · dY.
	dW := tensor.New(fc.In, fc.Out)
	tensor.Gemm(tensor.Transpose(x), dY, dW)
	t.opt.UpdateDense(fc.Name()+"/W", fc.W.Data(), dW.Data())

	// db = column sums of dY.
	dB := make([]float32, fc.Out)
	for i := 0; i < dY.Dim(0); i++ {
		row := dY.Row(i)
		for j, v := range row {
			dB[j] += v
		}
	}
	t.opt.UpdateDense(fc.Name()+"/b", fc.B, dB)
	// The serving hot path caches W in packed form; drop the cache so
	// a model being fine-tuned while served never runs stale weights.
	fc.InvalidatePacked()
	return dX
}

// slsBackward scatters the pooled-output gradient back into the
// gathered table rows: each row in slice k receives dOut[k]. Rows
// gathered more than once in a slice receive the gradient once per
// occurrence, matching the forward sum.
func (t *Trainer) slsBackward(op *nn.SLSOp, ids []int, batch int, dOut *tensor.Tensor) {
	key := op.Name()
	for k := 0; k < batch; k++ {
		g := dOut.Row(k)
		for _, id := range ids[k*op.Lookups : (k+1)*op.Lookups] {
			t.opt.UpdateSparseRow(key, id, op.Table.W.Row(id), g)
		}
	}
	// On a quantized model, re-quantize every updated row so the int8
	// serving snapshot tracks the fp32 source of truth; without this the
	// generation bump below would be moot — the serving gather would
	// just re-read the same stale codes.
	if q := op.Quant; q != nil {
		for _, id := range ids {
			q.QuantizeRow(id, op.Table.W.Row(id))
		}
	}
	// The serving hot path may hold updated rows in its hot-row cache;
	// bump the generation so a model being fine-tuned while served
	// never gathers stale embeddings — the SLS counterpart of
	// fc.InvalidatePacked above.
	op.InvalidateCachedRows()
}

// reluBackward zeroes gradient entries where the activation output was
// zero. out is the post-ReLU activation.
func reluBackward(grad, out *tensor.Tensor) {
	g, o := grad.Data(), out.Data()
	for i := range g {
		if o[i] <= 0 {
			g[i] = 0
		}
	}
}

// dotBackward backpropagates through DotInteraction: the input holds
// NumVec vectors of width Dim per sample; the output is the dense
// vector (IncludeDense) followed by the strictly-lower-triangle pair
// dot products.
func dotBackward(d *nn.DotInteraction, in, dOut *tensor.Tensor) *tensor.Tensor {
	batch := in.Dim(0)
	dIn := tensor.New(batch, d.NumVec*d.Dim)
	for b := 0; b < batch; b++ {
		x := in.Row(b)
		g := dOut.Row(b)
		dx := dIn.Row(b)
		off := 0
		if d.IncludeDense {
			copy(dx[:d.Dim], g[:d.Dim])
			off = d.Dim
		}
		for i := 1; i < d.NumVec; i++ {
			vi := x[i*d.Dim : (i+1)*d.Dim]
			for j := 0; j < i; j++ {
				vj := x[j*d.Dim : (j+1)*d.Dim]
				dz := g[off]
				off++
				dvi := dx[i*d.Dim : (i+1)*d.Dim]
				dvj := dx[j*d.Dim : (j+1)*d.Dim]
				for c := 0; c < d.Dim; c++ {
					dvi[c] += dz * vj[c]
					dvj[c] += dz * vi[c]
				}
			}
		}
	}
	return dIn
}

// splitConcat slices the concatenated gradient back into per-part
// gradients.
func splitConcat(c *nn.Concat, grad *tensor.Tensor) []*tensor.Tensor {
	batch := grad.Dim(0)
	parts := make([]*tensor.Tensor, len(c.Widths))
	off := 0
	for i, w := range c.Widths {
		p := tensor.New(batch, w)
		for b := 0; b < batch; b++ {
			copy(p.Row(b), grad.Row(b)[off:off+w])
		}
		parts[i] = p
		off += w
	}
	return parts
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// bceLoss is mean binary cross-entropy, clamped for numerical safety.
func bceLoss(probs, labels []float32) float32 {
	const eps = 1e-7
	var sum float64
	for i, p := range probs {
		pp := float64(p)
		if pp < eps {
			pp = eps
		}
		if pp > 1-eps {
			pp = 1 - eps
		}
		y := float64(labels[i])
		sum += -(y*math.Log(pp) + (1-y)*math.Log(1-pp))
	}
	return float32(sum / float64(len(probs)))
}
