package train

import (
	"math"
	"testing"

	"recsys/internal/model"
	"recsys/internal/nn"
	"recsys/internal/stats"
)

// tinyConfig is a minimal model with every architectural element: dense
// path, embedding tables, dot interaction, multi-layer top.
func tinyConfig(interaction model.Interaction) model.Config {
	return model.Config{
		Name:        "tiny",
		Class:       model.Custom,
		DenseIn:     6,
		BottomMLP:   []int{8, 4},
		TopMLP:      []int{6, 1},
		Tables:      model.UniformTables(3, 50, 4, 2),
		Interaction: interaction,
	}
}

func buildTiny(t *testing.T, interaction model.Interaction, seed uint64) *model.Model {
	t.Helper()
	m, err := model.Build(tinyConfig(interaction), stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewTrainerPanics(t *testing.T) {
	m := buildTiny(t, model.Dot, 1)
	for name, fn := range map[string]func(){
		"nil model": func() { NewTrainer(nil, 0.1) },
		"zero lr":   func() { NewTrainer(m, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	tr := NewTrainer(m, 0.1)
	if tr.Model() != m {
		t.Error("Model() accessor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("label mismatch should panic")
		}
	}()
	req := model.NewRandomRequest(m.Config, 4, stats.NewRNG(2))
	tr.Step(req, []float32{1})
}

// TestGradientCheck verifies the analytic gradients against numerical
// differentiation of the BCE loss for every parameter family: bottom FC
// weights/bias, top FC weights, and embedding rows, for both Cat and
// Dot interactions.
func TestGradientCheck(t *testing.T) {
	for _, interaction := range []model.Interaction{model.Cat, model.Dot} {
		m := buildTiny(t, interaction, 3)
		rng := stats.NewRNG(4)
		req := model.NewRandomRequest(m.Config, 3, rng)
		labels := []float32{1, 0, 1}

		lossAt := func() float64 {
			tr := NewTrainer(m, 1) // lr unused for Loss
			return float64(tr.Loss(req, labels))
		}

		// Analytic gradient of a parameter = (w_before - w_after)/lr
		// after one Step with a tiny lr (so the step stays in the
		// linear regime).
		const lr = 1e-4
		checks := []struct {
			name string
			ptr  func() *float32
		}{
			{"bottom W", func() *float32 { return &m.Bottom.Layers[0].W.Data()[3] }},
			{"bottom b", func() *float32 { return &m.Bottom.Layers[0].B[1] }},
			{"top W", func() *float32 { return &m.Top.Layers[0].W.Data()[5] }},
			{"top last W", func() *float32 { return &m.Top.Layers[1].W.Data()[2] }},
			{"embedding row", func() *float32 { return &m.SLS[0].Table.W.Row(req.SparseIDs[0][0])[1] }},
		}
		for _, c := range checks {
			p := c.ptr()
			orig := *p

			// Numerical gradient via central differences.
			const h = 1e-3
			*p = orig + h
			up := lossAt()
			*p = orig - h
			down := lossAt()
			*p = orig
			numGrad := (up - down) / (2 * h)

			// Analytic gradient via one SGD step.
			snapshot := orig
			tr := NewTrainer(m, lr)
			tr.Step(req, labels)
			anaGrad := float64((snapshot - *p) / lr)
			*p = orig // restore for the next check (other params moved,
			// but each check re-snapshots its own)

			if math.Abs(numGrad-anaGrad) > 1e-2*math.Max(1, math.Abs(numGrad)) {
				t.Errorf("%v/%s: numerical grad %.6f vs analytic %.6f",
					interaction, c.name, numGrad, anaGrad)
			}
			// Rebuild the model so parameter updates from the Step do
			// not accumulate across checks.
			m = buildTiny(t, interaction, 3)
			req = model.NewRandomRequest(m.Config, 3, stats.NewRNG(4))
		}
	}
}

// TestTrainingReducesLoss: SGD on a fixed batch must drive the loss
// down (overfitting a single batch is the canonical smoke test).
func TestTrainingReducesLoss(t *testing.T) {
	for _, interaction := range []model.Interaction{model.Cat, model.Dot} {
		m := buildTiny(t, interaction, 5)
		tr := NewTrainer(m, 0.05)
		req := model.NewRandomRequest(m.Config, 16, stats.NewRNG(6))
		labels := make([]float32, 16)
		for i := range labels {
			labels[i] = float32(i % 2)
		}
		first := tr.Step(req, labels)
		var last float32
		for i := 0; i < 200; i++ {
			last = tr.Step(req, labels)
		}
		if last >= first*0.5 {
			t.Errorf("%v: loss did not halve: %.4f -> %.4f", interaction, first, last)
		}
	}
}

// TestEmbeddingGradientSparse: only gathered rows may change.
func TestEmbeddingGradientSparse(t *testing.T) {
	m := buildTiny(t, model.Cat, 7)
	before := m.SLS[0].Table.W.Clone()
	tr := NewTrainer(m, 0.1)
	req := model.NewRandomRequest(m.Config, 2, stats.NewRNG(8))
	tr.Step(req, []float32{1, 0})

	touched := map[int]bool{}
	for _, id := range req.SparseIDs[0] {
		touched[id] = true
	}
	changedUntouched := 0
	changedTouched := 0
	for r := 0; r < m.SLS[0].Table.Rows; r++ {
		same := true
		for c := 0; c < m.SLS[0].Table.Cols; c++ {
			if m.SLS[0].Table.W.At(r, c) != before.At(r, c) {
				same = false
				break
			}
		}
		if !same {
			if touched[r] {
				changedTouched++
			} else {
				changedUntouched++
			}
		}
	}
	if changedUntouched > 0 {
		t.Errorf("%d un-gathered rows modified — embedding gradient must be sparse", changedUntouched)
	}
	if changedTouched == 0 {
		t.Error("no gathered rows updated")
	}
}

// TestTrainQuantizedModel: fine-tuning a quantized model must behave
// exactly like fine-tuning its fp32 twin — the training forward reads
// the fp32 tables, never the frozen int8 snapshot — and the snapshot
// must be re-quantized from the updated rows so serving stays coherent
// with training.
func TestTrainQuantizedModel(t *testing.T) {
	mFP := buildTiny(t, model.Cat, 21)
	mQ := buildTiny(t, model.Cat, 21) // same seed → identical weights
	mQ.QuantizeTables()

	rng := stats.NewRNG(22)
	req := model.NewRandomRequest(mFP.Config, 8, rng)
	labels := make([]float32, 8)
	for i := range labels {
		labels[i] = float32(i % 2)
	}

	trFP := NewTrainer(mFP, 0.05)
	trQ := NewTrainer(mQ, 0.05)
	for step := 0; step < 5; step++ {
		lossFP := trFP.Step(req, labels)
		lossQ := trQ.Step(req, labels)
		if lossFP != lossQ {
			t.Fatalf("step %d: quantized-model loss %v != fp32 loss %v — training forward read the int8 snapshot", step, lossQ, lossFP)
		}
	}
	for i := range mFP.SLS {
		a, b := mFP.SLS[i].Table.W.Data(), mQ.SLS[i].Table.W.Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("table %d diverged from the fp32 twin after training", i)
			}
		}
	}

	// The int8 snapshot must equal a fresh re-quantization of the
	// updated fp32 table: touched rows were re-quantized in the step,
	// untouched rows never went stale.
	for i, op := range mQ.SLS {
		row := make([]float32, op.Table.Cols)
		want := make([]float32, op.Table.Cols)
		fresh := nn.Quantize(op.Table)
		for r := 0; r < op.Table.Rows; r++ {
			op.Quant.Row(r, row)
			fresh.Row(r, want)
			for c := range row {
				if row[c] != want[c] {
					t.Fatalf("table %d row %d: int8 snapshot stale after sparse update", i, r)
				}
			}
		}
	}
}

// TestTeacherStudent: training a student against a teacher of the same
// architecture must lift held-out AUC well above chance.
func TestTeacherStudent(t *testing.T) {
	cfg := tinyConfig(model.Dot)
	teacher, err := NewTeacher(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	student, err := model.Build(cfg, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(student, 0.02)
	for step := 0; step < 400; step++ {
		req, labels := teacher.Sample(32)
		tr.Step(req, labels)
	}
	auc := teacher.Evaluate(student, 4000)
	if auc < 0.65 {
		t.Errorf("held-out AUC = %.3f, want > 0.65 after training", auc)
	}
}

func TestTeacherLabelsBalanced(t *testing.T) {
	teacher, err := NewTeacher(tinyConfig(model.Cat), 13)
	if err != nil {
		t.Fatal(err)
	}
	_, labels := teacher.Sample(2000)
	pos := 0
	for _, l := range labels {
		if l == 1 {
			pos++
		}
	}
	frac := float64(pos) / float64(len(labels))
	if frac < 0.1 || frac > 0.9 {
		t.Errorf("label balance %.2f too extreme for training", frac)
	}
}

func TestNewTeacherRejectsInvalid(t *testing.T) {
	if _, err := NewTeacher(model.Config{Name: "bad"}, 1); err == nil {
		t.Error("invalid config should error")
	}
}
