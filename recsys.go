// Package recsys is a library for building, running, and
// architecturally characterizing DNN-based personalized-recommendation
// models, reproducing "The Architectural Implications of Facebook's
// DNN-based Personalized Recommendation" (HPCA 2020).
//
// The package re-exports the public surface of the internal subsystems:
//
//   - Model configuration and execution: Config, Build, Model, Request
//     (internal/model) — real fp32 inference with FC stacks, embedding
//     tables pooled by SparseLengthsSum, and Cat/Dot feature interaction.
//   - The Table I production model classes: RMC1Small..RMC3Large and
//     the MLPerfNCF baseline.
//   - Server architectures of Table II: Haswell, Broadwell, Skylake.
//   - Performance simulation: Estimate computes per-operator inference
//     latency on a machine under batching, co-location, and
//     hyperthreading (internal/perf).
//   - Scheduling: Optimize and BestMachine search batch size,
//     co-location degree, and platform for maximum latency-bounded
//     throughput (internal/sched).
//   - Serving simulation: Simulate runs a thread-pool inference tier
//     with Poisson load and production tail-latency variability
//     (internal/server).
//   - Sparse-ID trace generation for embedding-locality studies
//     (internal/trace).
//   - Serving observability: per-request lifecycle traces and
//     Prometheus-format metrics from the concurrent engine
//     (internal/obs; ServeTrace, ServeEngine.WriteMetrics).
//
// Every experiment in the paper's evaluation can be regenerated with
// cmd/reproduce; see DESIGN.md for the experiment index.
package recsys

import (
	"recsys/internal/arch"
	"recsys/internal/batch"
	"recsys/internal/capacity"
	"recsys/internal/dataset"
	"recsys/internal/dist"
	"recsys/internal/embcache"
	"recsys/internal/engine"
	"recsys/internal/model"
	"recsys/internal/nn"
	"recsys/internal/obs"
	"recsys/internal/perf"
	"recsys/internal/profile"
	"recsys/internal/rank"
	"recsys/internal/sched"
	"recsys/internal/server"
	"recsys/internal/stats"
	"recsys/internal/trace"
	"recsys/internal/train"
)

// Model configuration and execution.
type (
	// Config describes a recommendation-model architecture (Figure 13
	// knobs: table shapes, lookups, Bottom/Top MLP widths).
	Config = model.Config
	// TableSpec is one embedding table plus its per-sample lookups.
	TableSpec = model.TableSpec
	// Class identifies the model family (RMC1/RMC2/RMC3/NCF/Custom).
	Class = model.Class
	// Interaction selects Cat or Dot feature combination.
	Interaction = model.Interaction
	// Model is a runnable, materialized recommendation model.
	Model = model.Model
	// Request is one batched inference input.
	Request = model.Request
)

// Model classes and interaction kinds.
const (
	RMC1   = model.RMC1
	RMC2   = model.RMC2
	RMC3   = model.RMC3
	NCF    = model.NCF
	Custom = model.Custom

	Cat = model.Cat
	Dot = model.Dot
)

// Zoo constructors (Table I) and helpers.
var (
	RMC1Small      = model.RMC1Small
	RMC1Large      = model.RMC1Large
	RMC2Small      = model.RMC2Small
	RMC2Large      = model.RMC2Large
	RMC3Small      = model.RMC3Small
	RMC3Large      = model.RMC3Large
	MLPerfNCF      = model.MLPerfNCF
	WideAndDeep    = model.WideAndDeep
	YouTubeRanking = model.YouTubeRanking
	Zoo            = model.Zoo
	Defaults       = model.Defaults
	UniformTables  = model.UniformTables

	// Build materializes a runnable model (weights allocated).
	Build = model.Build
	// NewRandomRequest creates a random batched request for a config.
	NewRandomRequest = model.NewRandomRequest

	// LoadConfig / SaveConfig read and write JSON model configurations.
	LoadConfig = model.LoadConfig
	SaveConfig = model.SaveConfig
	// LoadModel / LoadModelFile read weight checkpoints written with
	// Model.Save / Model.SaveFile.
	LoadModel     = model.Load
	LoadModelFile = model.LoadFile
)

// Server architectures (Table II).
type Machine = arch.Machine

// Machine constructors.
var (
	Haswell   = arch.Haswell
	Broadwell = arch.Broadwell
	Skylake   = arch.Skylake
	Machines  = arch.Machines
	ByName    = arch.ByName
)

// Performance simulation.
type (
	// PerfContext is the run-time environment (machine, batch,
	// co-located tenants, hyperthreading, sparse-ID locality).
	PerfContext = perf.Context
	// ModelTime is a per-operator latency estimate.
	ModelTime = perf.ModelTime
	// OpKind classifies operators for breakdowns.
	OpKind = nn.Kind
)

// Operator kinds for ModelTime.KindFraction.
const (
	KindFC         = nn.KindFC
	KindSLS        = nn.KindSLS
	KindConcat     = nn.KindConcat
	KindBatchMM    = nn.KindBatchMM
	KindActivation = nn.KindActivation
)

// Performance-simulation entry points.
var (
	// Estimate computes one inference's latency under a context.
	Estimate = perf.Estimate
	// NewPerfContext returns a solo context for a machine and batch.
	NewPerfContext = perf.NewContext
)

// Scheduling.
type Plan = sched.Plan

// Scheduling entry points.
var (
	EvaluatePlan             = sched.Evaluate
	Optimize                 = sched.Optimize
	BestMachine              = sched.BestMachine
	LatencyThroughputCurve   = sched.LatencyThroughputCurve
	LatencyBoundedThroughput = sched.LatencyBoundedThroughput
)

// Serving simulation.
type (
	// SimConfig configures a serving-tier simulation.
	SimConfig = server.SimConfig
	// SimResult summarizes a simulated run.
	SimResult = server.Result
)

// Simulate runs the serving-tier simulation.
var Simulate = server.Simulate

// Sparse-ID trace generation.
type IDGenerator = trace.IDGenerator

// Trace-generator constructors.
var (
	NewUniformIDs    = trace.NewUniform
	NewZipfianIDs    = trace.NewZipfian
	NewRepeatWindow  = trace.NewRepeatWindow
	NewReplay        = trace.NewReplay
	UniqueFraction   = trace.UniqueFraction
	ProductionTraces = trace.ProductionTraces
)

// RNG is the deterministic random source used across the library.
type RNG = stats.RNG

// NewRNG returns a deterministic generator for the given seed.
var NewRNG = stats.NewRNG

// Training.
type (
	// Trainer performs SGD steps (BCE loss, sparse embedding grads).
	Trainer = train.Trainer
	// Teacher generates labeled synthetic training data.
	Teacher = train.Teacher
)

// Optimizer applies gradients to dense and sparse parameters.
type Optimizer = train.Optimizer

// Training entry points.
var (
	NewTrainer              = train.NewTrainer
	NewTrainerWithOptimizer = train.NewTrainerWithOptimizer
	NewSGD                  = train.NewSGD
	NewAdaGrad              = train.NewAdaGrad
	NewTeacher              = train.NewTeacher
	// AUC computes the area under the ROC curve.
	AUC = stats.AUC
)

// Concurrent serving (real execution, not simulation).
type (
	// ServeOptions configures the concurrent inference server.
	ServeOptions = engine.Options
	// ServeEmbCacheOptions configures the per-table read-through
	// hot-row cache consulted by the serving gather path
	// (ServeOptions.EmbCache).
	ServeEmbCacheOptions = engine.EmbCacheOptions
	// ServeEmbCacheStats are one table's cumulative cache counters,
	// reported in ServeStats.EmbCache and /metrics.
	ServeEmbCacheStats = engine.EmbCacheStats
	// ServeServer is the single-model wrapper around a serving engine.
	ServeServer = engine.Server
	// ServeEngine is the multi-model serving core: model registry,
	// per-model batch formers, shared executor pool.
	ServeEngine = engine.Engine
	// ServeModelOptions configures one registered model (batching
	// policy, scheduling weight).
	ServeModelOptions = engine.ModelOptions
	// ServeStats are cumulative per-model serving counters.
	ServeStats = engine.Stats
	// ServeTrace is one request's lifecycle trace (validate,
	// queue-wait, batch-form, execute stage times plus per-operator
	// spans), retained when ServeOptions.TraceRing > 0.
	ServeTrace = obs.Trace
	// ServeTraceDump is the retained-trace snapshot returned by
	// ServeEngine.Traces and GET /trace/{model}: the N slowest and N
	// most recent traces.
	ServeTraceDump = obs.Dump
)

// Serving entry points.
var (
	// NewServer starts a single-model concurrent inference server.
	NewServer = engine.New
	// NewServeEngine starts an empty multi-model serving engine.
	NewServeEngine = engine.NewEngine
	// DefaultServeOptions returns a 4-worker batching configuration.
	DefaultServeOptions = engine.DefaultOptions
)

// ErrServerClosed is returned by ServeServer.Rank after Close.
var ErrServerClosed = engine.ErrClosed

// ErrModelNotFound is returned for requests naming an unknown model.
var ErrModelNotFound = engine.ErrModelNotFound

// ErrBadRequest marks requests refused by the engine's admission-time
// validation (shape or sparse-ID range mismatch); classify with
// errors.Is.
var ErrBadRequest = engine.ErrBadRequest

// ErrInference wraps a forward-pass fault recovered by an executor
// worker (an engine-internal error, not a client one).
var ErrInference = engine.ErrInference

// ValidateRankRequest checks a request against a model configuration —
// the same admission check ServeEngine.Rank performs: batch positivity,
// dense shape, sparse table count, per-table ID counts, and ID ranges.
// Failures wrap ErrBadRequest.
var ValidateRankRequest = model.ValidateRequest

// Embedding caching (tiered-memory serving).
type (
	// CachePolicy is a fixed-capacity embedding-row cache.
	CachePolicy = embcache.Policy
	// TieredStore models a DRAM cache over NVM.
	TieredStore = embcache.TieredStore
	// ConcurrentRowCache is the sharded, generation-invalidated
	// hot-row cache the serving gather path reads through (attach with
	// ServeOptions.EmbCache or nn.SLSOp.SetRowCache).
	ConcurrentRowCache = embcache.Concurrent
	// RowCacheStats are a ConcurrentRowCache's cumulative counters.
	RowCacheStats = embcache.LiveStats
)

// PrefetchModel estimates gather time under software prefetching.
type PrefetchModel = embcache.PrefetchModel

// Embedding-cache entry points.
var (
	NewLRUCache        = embcache.NewLRU
	NewLFUCache        = embcache.NewLFU
	NewFIFOCache       = embcache.NewFIFO
	NewPinnedCache     = embcache.NewPinned
	CacheHitRate       = embcache.HitRate
	DefaultTieredStore = embcache.DefaultTieredStore
	// NewConcurrentRowCache builds the lock-striped serving cache.
	NewConcurrentRowCache = embcache.NewConcurrent
)

// Distributed (sharded) serving.
type (
	// Cluster describes a sharded deployment.
	Cluster = dist.Cluster
	// ShardTime is a distributed-inference latency breakdown.
	ShardTime = dist.Time
)

// Distributed-serving entry points.
var (
	EstimateSharded = dist.Estimate
	PlaceTables     = dist.PlaceTables
	DefaultNetwork  = dist.DefaultNetwork
)

// Dynamic batching.
type (
	BatcherConfig = server.BatcherConfig
	// BatchPolicy is the dispatch policy (batch cap, wait bound) shared
	// by the simulator and the real engine's batch formers.
	BatchPolicy = batch.Policy
)

// SimulateBatched runs the serving simulation with dynamic batching.
var SimulateBatched = server.SimulateBatched

// Quantization.
type QuantizedTable = nn.QuantizedTable

// QuantizeTable converts an fp32 embedding table to row-wise int8.
var QuantizeTable = nn.Quantize

// Click-log datasets (Criteo format).
type (
	// CriteoRecord is one parsed click-log line.
	CriteoRecord = dataset.Record
	// CriteoEncoder maps records onto a model's input shapes.
	CriteoEncoder = dataset.Encoder
)

// Dataset entry points.
var (
	ParseCriteoLine      = dataset.ParseLine
	NewCriteoReader      = dataset.NewReader
	NewCriteoEncoder     = dataset.NewEncoder
	SyntheticCriteoLines = dataset.SyntheticLines
)

// Fleet capacity planning.
type (
	// CapacityDemand is one service to provision.
	CapacityDemand = capacity.Demand
	// CapacityResult is a complete fleet plan.
	CapacityResult = capacity.Result
)

// Capacity-planning entry points.
var (
	PlanCapacity       = capacity.Plan
	HomogeneousSockets = capacity.HomogeneousSockets
	UnlimitedInventory = capacity.Unlimited
)

// Two-stage ranking pipeline (Figure 6).
type (
	// Pipeline is a filtering→ranking cascade.
	Pipeline = rank.Pipeline
	// EnginePipeline is the cascade running through a serving engine.
	EnginePipeline = rank.EnginePipeline
	// RankResult is one served candidate.
	RankResult = rank.Result
)

// Pipeline helpers.
var (
	TopK          = rank.TopK
	SubsetRequest = rank.SubsetRequest
)

// Wall-clock profiling of real execution.
type ExecutionProfile = profile.Profile

// Profiling entry points.
var (
	ProfiledForward = profile.Forward
	ProfileAverage  = profile.Average
)
