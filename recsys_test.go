package recsys_test

import (
	"testing"

	"recsys"
)

// TestPublicAPIRoundTrip exercises the facade end-to-end the way the
// README shows: build, infer, estimate, optimize, simulate.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := recsys.RMC1Small().Scaled(20)
	m, err := recsys.Build(cfg, recsys.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	req := recsys.NewRandomRequest(cfg, 4, recsys.NewRNG(1))
	ctr := m.CTR(req)
	if len(ctr) != 4 {
		t.Fatalf("CTR len %d", len(ctr))
	}
	for _, p := range ctr {
		if p <= 0 || p >= 1 {
			t.Fatalf("CTR %v out of (0,1)", p)
		}
	}

	mt := recsys.Estimate(recsys.RMC1Small(), recsys.NewPerfContext(recsys.Broadwell(), 16))
	if mt.TotalUS <= 0 {
		t.Fatal("estimate failed")
	}
	if f := mt.KindFraction(recsys.KindFC, recsys.KindBatchMM, recsys.KindSLS,
		recsys.KindConcat, recsys.KindActivation); f <= 0.5 {
		t.Fatalf("named kinds cover only %.2f of time", f)
	}

	plan, ok := recsys.BestMachine(recsys.RMC3Small(), recsys.Machines(), 10_000)
	if !ok || plan.Throughput <= 0 {
		t.Fatal("BestMachine failed")
	}

	res := recsys.Simulate(recsys.SimConfig{
		Model: cfg, Machine: recsys.Skylake(),
		Batch: 8, Workers: 2, QPS: 1000, Requests: 500, SLAUS: 50_000, Seed: 3,
	})
	if res.Completed != 500 {
		t.Fatalf("simulate completed %d", res.Completed)
	}
}

func TestPublicAPIMachines(t *testing.T) {
	if len(recsys.Machines()) != 3 {
		t.Fatal("expected three Table II machines")
	}
	m, err := recsys.ByName("Haswell")
	if err != nil || m.FreqGHz != 2.5 {
		t.Fatalf("ByName: %v %v", m, err)
	}
}

func TestPublicAPITraces(t *testing.T) {
	rng := recsys.NewRNG(5)
	g := recsys.NewZipfianIDs(10000, 1.2, rng)
	if f := recsys.UniqueFraction(g, 1000); f <= 0 || f > 1 {
		t.Fatalf("unique fraction %v", f)
	}
	if len(recsys.ProductionTraces(10000, rng)) != 10 {
		t.Fatal("expected ten production traces")
	}
}

func TestPublicAPIZoo(t *testing.T) {
	if len(recsys.Zoo()) != 6 || len(recsys.Defaults()) != 3 {
		t.Fatal("zoo sizes wrong")
	}
	if recsys.RMC2Small().Class != recsys.RMC2 {
		t.Fatal("class mismatch")
	}
	if recsys.MLPerfNCF().Class != recsys.NCF {
		t.Fatal("NCF class mismatch")
	}
	custom := recsys.Config{
		Name:        "mine",
		Class:       recsys.Custom,
		DenseIn:     8,
		BottomMLP:   []int{16, 8},
		TopMLP:      []int{16, 1},
		Tables:      recsys.UniformTables(2, 100, 8, 4),
		Interaction: recsys.Dot,
	}
	if err := custom.Validate(); err != nil {
		t.Fatalf("custom config: %v", err)
	}
}
